"""Pluggable transports moving cluster work units to their executors.

A *transport* is a tiny submit/collect interface over which the cluster
executor schedules :mod:`repro.cluster.protocol` task dicts:

* ``"local"`` — tasks execute in-process, one per :meth:`next_result` call.
  Zero setup, fully deterministic; the transport of choice for tests and
  the semantics oracle for the other two.
* ``"mp"`` — tasks ride the shared spawn-safe process pool
  (:mod:`repro.engine.pool`) that the sharded backend already uses.  This
  is the refactor of the PR 2 pool behind the transport interface: same
  pool, same lifecycle, same inline-fallback conditions.
* ``"queue"`` — a file-backed task queue in a *spool directory*.  The
  parent enqueues task files; workers — local subprocesses spawned by the
  transport, or ``python -m repro.cluster.worker --spool DIR`` processes
  joining from other hosts/containers over a shared filesystem — claim
  tasks by atomic rename, heartbeat a lease while executing, and write
  result files back.

**Lease/heartbeat retry.**  A queue worker that dies (or loses its host)
mid-task stops refreshing the task's lease; once the lease goes stale the
parent moves the claim back onto the queue for another worker — or, when no
live worker remains, executes it inline itself (the parent is always a
worker of last resort, so a queue run can never deadlock on an empty
worker set).  Duplicate deliveries this creates are harmless: task results
are deterministic and the parent consumes exactly one result per task id,
with the merge layer idempotent on top (:func:`repro.cluster.protocol.min_merge`).

Transport resolution mirrors the backend registry: explicit argument >
:func:`set_default_transport` (the runner's ``--transport`` flag) >
``REPRO_TRANSPORT`` environment variable > ``"mp"``.  A queue spool
directory can be given inline (``queue:/path/to/spool``) or via
``REPRO_QUEUE_DIR``; ``REPRO_QUEUE_WORKERS`` sizes the locally spawned
worker set (default: the resolved jobs count for a private spool, ``0``
when attaching to an external one — its workers are assumed to join from
outside).
"""

from __future__ import annotations

import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro import envvars
from repro.cluster.chaos import worker_injector as chaos_worker_injector
from repro.envvars import parse_lease_timeout
from repro.cluster.protocol import (
    WORKER_ENV_VAR,
    execute_task,
    unwrap_payload,
    worker_context,
)
from repro.cluster.retry import (
    backoff_delay,
    failure_record,
    format_quarantine_report,
    quarantine_entry,
    quarantine_task,
    resolve_task_retries,
)
from repro.obs import recorder as obs
from repro.engine.pool import (
    CHUNK_TIMEOUT,
    package_src_dir,
    resolve_jobs,
    worker_pool,
)

#: Environment variable selecting the cluster transport
#: (``local`` / ``mp`` / ``queue`` / ``queue:<spool dir>``).
TRANSPORT_ENV_VAR = envvars.TRANSPORT.name

#: Environment variable naming a queue spool directory to attach to.
QUEUE_DIR_ENV_VAR = envvars.QUEUE_DIR.name

#: Environment variable sizing the queue transport's spawned worker set.
QUEUE_WORKERS_ENV_VAR = envvars.QUEUE_WORKERS.name

TRANSPORTS = ("local", "mp", "queue")

DEFAULT_TRANSPORT_NAME = "mp"

#: Environment variable overriding the queue lease timeout (seconds).
LEASE_TIMEOUT_ENV_VAR = envvars.LEASE_TIMEOUT.name

#: Seconds without a lease heartbeat before a claimed task is re-enqueued.
DEFAULT_LEASE_TIMEOUT = 15.0

_default_name: Optional[str] = None
_default_lease_timeout: Optional[float] = None


def set_default_lease_timeout(value: Optional[float]) -> Optional[float]:
    """Set (or with ``None`` clear) the process-wide lease timeout override.

    Returns the previous override so callers can restore it (the experiment
    runner's ``--lease-timeout`` flag uses this like ``--transport``).

    Raises:
        ValueError: for non-positive values.
    """
    global _default_lease_timeout
    previous = _default_lease_timeout
    _default_lease_timeout = (
        parse_lease_timeout(value) if value is not None else None
    )
    return previous


def resolve_lease_timeout(value: Optional[float] = None) -> float:
    """Resolve the queue lease timeout.

    Resolution order mirrors the backend/transport registries: explicit
    argument > :func:`set_default_lease_timeout` > ``REPRO_LEASE_TIMEOUT``
    > :data:`DEFAULT_LEASE_TIMEOUT`.

    Raises:
        ValueError: for invalid explicit or environment values.
    """
    if value is not None:
        return parse_lease_timeout(value)
    if _default_lease_timeout is not None:
        return _default_lease_timeout
    env = envvars.LEASE_TIMEOUT.read()
    if env is not None:
        return env
    return DEFAULT_LEASE_TIMEOUT


class TransportError(RuntimeError):
    """A transport cannot be built or has failed; callers fall back inline."""


class TransportTaskError(RuntimeError):
    """A task raised in its executor; carries the remote traceback text.

    ``task_id`` identifies the failed task so collectors that can retry a
    single unit inline (the experiment runner's cells) know which one died
    without abandoning the rest of the batch; ``transport`` names the
    transport that surfaced the failure so fallback handlers can attach
    both to their failure events instead of swallowing the cause.
    """

    def __init__(
        self,
        message: str,
        task_id: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.transport = transport


class QuarantineError(TransportTaskError):
    """A task exhausted its retry budget *and* failed inline re-execution.

    This is the end of the recovery ladder: retries, backoff and the
    parent's inline worker-of-last-resort all failed, so the run aborts —
    with ``report`` (a list of :func:`repro.cluster.retry.quarantine_entry`
    dicts) naming exactly which tasks died, how many attempts each got and
    where their quarantine directories are.  Subclasses
    :class:`TransportTaskError` so existing per-unit retry handlers (the
    runner's cell fallback) still recognise it, but degradation ladders
    must re-raise it rather than stepping down a rung: the task already ran
    inline and failed, so no healthier transport can save it.
    """

    def __init__(
        self,
        message: str,
        task_id: Optional[str] = None,
        transport: Optional[str] = None,
        report: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        super().__init__(message, task_id=task_id, transport=transport)
        self.report = list(report or [])


def degraded_transport_name(name: str) -> Optional[str]:
    """The next rung down the degradation ladder, or ``None`` for inline.

    ``queue -> mp -> local -> inline``: each step trades distribution for
    reliability, ending at in-process execution which cannot fail for
    transport reasons at all.
    """
    ladder = {"queue": "mp", "mp": "local"}
    return ladder.get(name)


class Transport:
    """Submit/collect interface every transport implements.

    Results may come back in any order and (for the queue transport) more
    than once per task; consumers must key merges on the returned task id
    and be idempotent — the protocol layer's merges are.
    """

    name: str = "?"

    #: Worker processes serving this transport (0 = the parent itself).
    workers: int = 0

    def submit(self, task: Dict[str, object]) -> str:
        """Enqueue one task; returns its id."""
        raise NotImplementedError

    def next_result(self, timeout: float = CHUNK_TIMEOUT) -> Tuple[str, object]:
        """Block until any outstanding task completes; ``(task_id, payload)``.

        Raises:
            TimeoutError: no task completed within ``timeout``.
            TransportTaskError: the task raised inside its executor.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    # Shared/pooled transports outlive individual runs; per-run transports
    # are closed by the executor that created them.
    persistent: bool = False


# -- local -------------------------------------------------------------------
class LocalTransport(Transport):
    """In-process execution, one task per collect call.

    ``order="lifo"`` collects newest-first — deliberately out-of-order — so
    tests can prove the merges are arrival-order independent without racing
    real processes.
    """

    name = "local"

    def __init__(self, order: str = "fifo") -> None:
        if order not in ("fifo", "lifo"):
            raise ValueError(f"unknown order {order!r}; choose fifo or lifo")
        self._order = order
        self._pending: "deque[Tuple[str, Dict[str, object]]]" = deque()
        self._counter = 0

    def submit(self, task: Dict[str, object]) -> str:
        task_id = f"t{self._counter:06d}"
        self._counter += 1
        self._pending.append((task_id, task))
        return task_id

    def next_result(self, timeout: float = CHUNK_TIMEOUT) -> Tuple[str, object]:
        if not self._pending:
            raise TransportError("local transport has no outstanding tasks")
        task_id, task = (
            self._pending.popleft() if self._order == "fifo" else self._pending.pop()
        )
        with worker_context():
            payload = execute_task(task)
        return task_id, unwrap_payload(task_id, payload)


# -- mp ----------------------------------------------------------------------
class MpTransport(Transport):
    """The shared spawn-pool behind the transport interface.

    Accepts an existing pool (the sharded backend passes the one it resolved
    itself, keeping its monkeypatchable ``worker_pool`` seam intact) or
    resolves one from ``jobs``.
    """

    name = "mp"

    def __init__(self, pool=None, jobs: Optional[int] = None) -> None:
        if pool is None:
            jobs = resolve_jobs(jobs)
            pool = worker_pool(jobs)
        if pool is None:
            raise TransportError("worker pool unavailable (jobs<=1 or spawn failed)")
        self._pool = pool
        self.workers = jobs or getattr(pool, "_processes", 0) or 0
        self._inflight: "deque[Tuple[str, object]]" = deque()
        self._counter = 0

    def submit(self, task: Dict[str, object]) -> str:
        task_id = f"t{self._counter:06d}"
        self._counter += 1
        self._inflight.append((task_id, self._pool.apply_async(execute_task, (task,))))
        return task_id

    def next_result(self, timeout: float = CHUNK_TIMEOUT) -> Tuple[str, object]:
        if not self._inflight:
            raise TransportError("mp transport has no outstanding tasks")
        task_id, handle = self._inflight.popleft()
        try:
            payload = handle.get(timeout=timeout)
        except Exception as err:
            # Worker-side exceptions and lost tasks surface uniformly so
            # collectors can retry the one unit inline.  multiprocessing
            # chains the worker-side traceback as a RemoteTraceback cause;
            # carry its text instead of throwing the cause away.
            cause = getattr(err, "__cause__", None)
            remote = (
                f"\n{cause}" if type(cause).__name__ == "RemoteTraceback" else ""
            )
            obs.event(
                "task_failed",
                transport=self.name,
                task_id=task_id,
                error=repr(err),
                traceback=str(cause) if remote else None,
            )
            raise TransportTaskError(
                f"task {task_id} failed in pool worker: {err!r}{remote}",
                task_id=task_id,
                transport=self.name,
            ) from err
        return task_id, unwrap_payload(task_id, payload)


# -- queue -------------------------------------------------------------------
SPOOL_DIRS = ("tasks", "claimed", "results", "workers", "events")
STOP_FILE = "stop"


def spool_events_dir(spool: str) -> str:
    """The spool subdirectory holding per-process JSONL event logs.

    Workers append their lifecycle events (joined, claimed, done, failed,
    exited) here — one ``*.jsonl`` file per process — giving a durable,
    distributed event log that survives the workers themselves.
    """
    return os.path.join(spool, "events")


def init_spool(spool: str) -> None:
    """Create the spool directory layout (idempotent)."""
    for sub in SPOOL_DIRS:
        os.makedirs(os.path.join(spool, sub), exist_ok=True)


def write_atomic(path: str, payload: bytes) -> None:
    """Write ``payload`` so readers only ever see complete files."""
    tmp = f"{path}.tmp-{uuid.uuid4().hex[:8]}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def enqueue_task(spool: str, task_id: str, task: Dict[str, object]) -> None:
    """Serialise one task onto the spool queue."""
    payload = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
    write_atomic(os.path.join(spool, "tasks", f"{task_id}.task"), payload)


def claim_task(spool: str) -> Optional[Tuple[str, str]]:
    """Atomically claim the oldest queued task; ``(task_id, claimed_path)``.

    The rename is the mutual-exclusion point: exactly one claimant wins a
    task file, losers simply move on to the next.
    """
    tasks_dir = os.path.join(spool, "tasks")
    try:
        names = sorted(n for n in os.listdir(tasks_dir) if n.endswith(".task"))
    except FileNotFoundError:
        return None
    for name in names:
        source = os.path.join(tasks_dir, name)
        target = os.path.join(spool, "claimed", name)
        try:
            os.replace(source, target)
        except FileNotFoundError:
            continue  # someone else won the rename
        return name[: -len(".task")], target
    return None


def write_result(spool: str, task_id: str, payload: Tuple[str, object]) -> None:
    """Publish a task outcome — ``("ok", value)`` or ``("error", text)``."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    write_atomic(os.path.join(spool, "results", f"{task_id}.result"), blob)


def release_claim(spool: str, task_id: str) -> None:
    """Remove a finished task's claim and lease files."""
    for name in (f"{task_id}.task", f"{task_id}.lease"):
        try:
            os.remove(os.path.join(spool, "claimed", name))
        except FileNotFoundError:
            pass


def touch(path: str) -> None:
    """Refresh a heartbeat/lease file's mtime (creating it if needed)."""
    with open(path, "a"):
        os.utime(path, None)


def refresh(path: str) -> None:
    """Refresh an *existing* file's mtime; a deleted file stays deleted.

    Heartbeat threads must use this for lease files: racing ``touch``
    against the release that deletes the lease would resurrect it as a
    permanent orphan (task ids are never reused, so nothing would ever
    clean it up).
    """
    try:
        os.utime(path, None)
    except FileNotFoundError:
        pass


def run_claimed_task(spool: str, task_id: str, claimed_path: str) -> None:
    """Execute a claimed task file and publish its result (worker core).

    Any task exception is published as an ``("error", ...)`` payload rather
    than raised: a poisoned task must fail its submitter, not kill the
    worker or wedge the queue.  A claim file that vanished before it could
    be read is *not* a task failure — the submitter's lease retry took the
    task back (this claimant stalled past the lease timeout) and someone
    else owns it now, so the only correct move is to walk away silently.
    """
    import traceback

    try:
        with open(claimed_path, "rb") as handle:
            task = pickle.load(handle)
    except FileNotFoundError:
        return
    try:
        with worker_context():
            payload = ("ok", execute_task(task))
    except Exception:
        payload = ("error", traceback.format_exc())
        obs.event(
            "task_failed",
            transport="queue",
            task_id=task_id,
            pid=os.getpid(),
            traceback=payload[1],
        )
    injector = chaos_worker_injector()
    if injector is not None:
        if injector.should("enospc", task_id):
            # Simulated full disk: nothing is published and the claim is
            # deliberately kept — dropping it too would make the task
            # vanish entirely (no result, no stale claim), wedging the
            # parent forever.  Lease expiry recovers the task instead.
            obs.event(
                "chaos_injected", fault="enospc", task_id=task_id, pid=os.getpid()
            )
            return
        if injector.should("corrupt", task_id):
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            write_atomic(
                os.path.join(spool, "results", f"{task_id}.result"),
                injector.corrupt_bytes(blob, task_id),
            )
            obs.event(
                "chaos_injected", fault="corrupt", task_id=task_id, pid=os.getpid()
            )
            release_claim(spool, task_id)
            return
        if injector.should("dup", task_id):
            # Publish but never release the claim: unless the parent
            # consumes the result before the lease expires, the task is
            # re-enqueued, re-executed and delivered a second time.
            write_result(spool, task_id, payload)
            obs.event(
                "chaos_injected", fault="dup", task_id=task_id, pid=os.getpid()
            )
            return
    write_result(spool, task_id, payload)
    release_claim(spool, task_id)


class QueueTransport(Transport):
    """File-backed task queue with lease-based retry of lost tasks.

    Several consumers can share one spool (and its spawned workers) at the
    same time — during ATPG, the PODEM scheduler and the dropping fault
    simulator both have tasks in flight: :meth:`channel` hands each
    consumer its own :class:`QueueChannel` with private submit/collect
    bookkeeping, so one consumer can never swallow another's results.
    Using the transport's own ``submit``/``next_result`` directly is the
    single-consumer convenience path (it delegates to a default channel).

    Args:
        spool: spool directory to attach to; ``None`` creates a private
            temporary spool (removed on :meth:`close`).
        workers: local worker subprocesses to spawn (``None``: the resolved
            ``jobs`` for a private spool, 0 for an external one).
        jobs: worker-count fallback used when ``workers`` is ``None``.
        lease_timeout: seconds without a lease heartbeat before a claimed
            task is considered lost and re-enqueued (``None``: resolved via
            :func:`resolve_lease_timeout`).
        poll_interval: parent/worker poll period.
        self_drain_after: seconds without progress before the parent starts
            executing queued tasks itself even though live workers exist
            (``None``: ``lease_timeout``).  With no live workers the parent
            drains immediately.
        task_retries: per-task retry budget before quarantine (``None``:
            resolved via :func:`repro.cluster.retry.resolve_task_retries`).
    """

    name = "queue"
    persistent = True

    def __init__(
        self,
        spool: Optional[str] = None,
        workers: Optional[int] = None,
        jobs: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        poll_interval: float = 0.02,
        self_drain_after: Optional[float] = None,
        task_retries: Optional[int] = None,
    ) -> None:
        jobs = resolve_jobs(jobs)
        self._owns_spool = spool is None
        self.spool = spool or tempfile.mkdtemp(prefix="repro-cluster-")
        init_spool(self.spool)
        if not self._owns_spool:
            # A stale stop file in an external spool (a previous operator
            # shutdown) would make every joining worker exit immediately;
            # attaching to submit work supersedes it.
            try:
                os.remove(os.path.join(self.spool, STOP_FILE))
            except FileNotFoundError:
                pass
        self.lease_timeout = resolve_lease_timeout(lease_timeout)
        self.task_retries = resolve_task_retries(task_retries)
        self.poll_interval = float(poll_interval)
        self.self_drain_after = (
            float(self_drain_after) if self_drain_after is not None else self.lease_timeout
        )
        self._channels = 0
        self._default_channel: Optional["QueueChannel"] = None
        self._procs: List[subprocess.Popen] = []
        self._last_sweep = 0.0
        self.drained = 0
        self.closed = False
        if workers is None:
            workers = jobs if self._owns_spool else 0
        self.workers = int(workers)
        for _ in range(self.workers):
            self._procs.append(self._spawn_worker())

    def channel(self) -> "QueueChannel":
        """A private submit/collect view over this spool for one consumer."""
        self._channels += 1
        return QueueChannel(self, self._channels)

    @property
    def _channel(self) -> "QueueChannel":
        if self._default_channel is None:
            self._default_channel = self.channel()
        return self._default_channel

    @property
    def retries(self) -> int:
        """Re-enqueued leases observed through the direct-use channel."""
        return self._channel.retries

    @property
    def quarantined(self) -> List[Dict[str, object]]:
        """Quarantine-report entries from the direct-use channel."""
        return self._channel.quarantined

    # -- worker management -------------------------------------------------
    def _spawn_worker(self) -> subprocess.Popen:
        env = dict(os.environ)
        src_dir = package_src_dir()
        parts = env.get("PYTHONPATH", "").split(os.pathsep)
        if src_dir not in parts:
            env["PYTHONPATH"] = os.pathsep.join(
                [src_dir] + [p for p in parts if p]
            )
        env[WORKER_ENV_VAR] = "1"
        if obs.enabled():
            # Propagate programmatic obs.enable() to freshly spawned queue
            # workers; REPRO_TRACE=1 in the environment passes through on
            # its own.  Same for the timeline tier, so worker-side span
            # intervals ride back even when only the parent turned it on.
            env[obs.TRACE_ENV_VAR] = "1"
            if obs.timeline_enabled():
                env[obs.TIMELINE_ENV_VAR] = "1"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--spool",
                self.spool,
                "--poll",
                str(max(0.01, self.poll_interval)),
                "--heartbeat",
                str(max(0.05, min(1.0, self.lease_timeout / 4))),
                # A parent that dies without writing the stop file (SIGKILL,
                # OOM) must not leave pollers behind forever: generously
                # idle-exit instead.  Normal runs never hit this — the stop
                # file lands at close().
                "--max-idle",
                str(max(60.0, 20.0 * self.lease_timeout)),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        obs.event(
            "worker_spawned", transport="queue", pid=proc.pid, spool=self.spool
        )
        return proc

    def _live_workers(self) -> int:
        """Workers with a fresh heartbeat file (local or remote).

        Freshly spawned local workers count as live while their process is
        running even before the first heartbeat lands — python startup takes
        long enough that the parent would otherwise drain the whole queue
        itself before any worker gets a chance to claim.
        """
        workers_dir = os.path.join(self.spool, "workers")
        now = time.time()
        live = 0
        try:
            names = os.listdir(workers_dir)
        except FileNotFoundError:
            names = []
        for name in names:
            try:
                age = now - os.path.getmtime(os.path.join(workers_dir, name))
            except FileNotFoundError:
                continue
            if age < self.lease_timeout:
                live += 1
        if live == 0:
            live = sum(1 for proc in self._procs if proc.poll() is None)
        return live

    # -- queue mechanics ----------------------------------------------------
    def _sweep_orphan_results(self) -> None:
        """Garbage-collect result files no consumer will ever claim.

        Orphans arise when a run aborts to its inline fallback while tasks
        are still executing, or when speculative chunks outlive their
        consumer; on a persistent shared spool they would otherwise
        accumulate forever.  The TTL is generous — any live consumer polls
        several orders of magnitude faster — and the sweep runs at most
        once per lease interval, so steady-state polling stays cheap.
        """
        now = time.time()
        if now - self._last_sweep < self.lease_timeout:
            return
        self._last_sweep = now
        ttl = 10 * self.lease_timeout
        results_dir = os.path.join(self.spool, "results")
        try:
            names = os.listdir(results_dir)
        except FileNotFoundError:
            return
        for name in names:
            path = os.path.join(results_dir, name)
            try:
                if now - os.path.getmtime(path) > ttl:
                    os.remove(path)
            except FileNotFoundError:
                continue

    def _drain_one(self) -> bool:
        """Execute one queued task in the parent (worker of last resort)."""
        claimed = claim_task(self.spool)
        if claimed is None:
            return False
        task_id, path = claimed
        obs.event("parent_drain", transport="queue", task_id=task_id)
        run_claimed_task(self.spool, task_id, path)
        self.drained += 1
        return True

    # Direct single-consumer surface (tests, the bench): one default channel.
    def submit(self, task: Dict[str, object]) -> str:
        return self._channel.submit(task)

    def next_result(self, timeout: float = CHUNK_TIMEOUT) -> Tuple[str, object]:
        return self._channel.next_result(timeout=timeout)

    def close(self) -> None:
        self.closed = True  # sibling channels fail fast instead of polling
        if self._owns_spool:
            # Private spool: tell (only) our own workers to exit.  External
            # spools are operator-managed — their stop file is the
            # operator's to write, and other parents may still be using it.
            try:
                write_atomic(os.path.join(self.spool, STOP_FILE), b"stop\n")
            except OSError:
                pass
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs = []
        if self._owns_spool:
            shutil.rmtree(self.spool, ignore_errors=True)


class QueueChannel(Transport):
    """One consumer's private submit/collect view over a shared spool.

    Channels share the spool directory, the spawned workers and the drain
    machinery of their parent :class:`QueueTransport`, but keep their own
    outstanding/consumed bookkeeping: a channel only ever consumes result
    files for task ids *it* submitted (ids are uuid-suffixed, so channels
    can never collide), leaving every other channel's results untouched on
    disk.  Lease retry is likewise scoped to the channel's own tasks.
    """

    name = "queue"
    persistent = True

    def __init__(self, parent: QueueTransport, number: int) -> None:
        self.parent = parent
        self._prefix = f"c{number}"
        self._counter = 0
        self._outstanding: Dict[str, Dict[str, object]] = {}
        self._consumed: set = set()
        self._claim_seen: Dict[str, float] = {}
        #: task_id -> accumulated failure records (retry budget bookkeeping).
        self._attempts: Dict[str, List[Dict[str, object]]] = {}
        #: task_id -> earliest re-enqueue time (exponential-backoff delay).
        self._requeue_at: Dict[str, float] = {}
        #: task_id -> when an unreadable result file was first seen.
        self._corrupt_seen: Dict[str, float] = {}
        #: Lease-expiry re-enqueues (legacy counter; budget lives in
        #: ``_attempts`` which also counts error and corrupt-result retries).
        self.retries = 0
        #: Quarantine-report entries for tasks that died for good.
        self.quarantined: List[Dict[str, object]] = []

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.parent.workers

    @property
    def spool(self) -> str:
        return self.parent.spool

    def submit(self, task: Dict[str, object]) -> str:
        task_id = f"{self._prefix}t{self._counter:06d}-{uuid.uuid4().hex[:6]}"
        self._counter += 1
        try:
            enqueue_task(self.spool, task_id, task)
        except OSError as err:
            # An unwritable spool (deleted out from under us, full disk,
            # permissions) means this transport cannot make progress at
            # all; surface it as a transport failure so the degradation
            # ladder engages instead of a bare OSError killing the run.
            raise TransportError(
                f"queue spool unwritable at {self.spool}: {err}"
            ) from err
        self._outstanding[task_id] = task
        return task_id

    def _consume(self, task_id: str) -> None:
        """Mark ``task_id`` done and drop every piece of its bookkeeping."""
        self._outstanding.pop(task_id, None)
        self._consumed.add(task_id)
        self._claim_seen.pop(task_id, None)
        self._attempts.pop(task_id, None)
        self._requeue_at.pop(task_id, None)
        self._corrupt_seen.pop(task_id, None)
        # A finished task can leave an orphan claim (stalled worker whose
        # result we consumed anyway, chaos-injected unreleased claims);
        # since the id is consumed, lease retry will never look at it again
        # — GC it now so shared spools stay clean.
        release_claim(self.spool, task_id)

    def _handle_failure(
        self, task_id: str, kind: str, detail: Optional[str]
    ) -> Optional[Tuple[str, object]]:
        """Route one task failure through retry budget -> quarantine.

        Returns ``None`` when the task was scheduled for another attempt
        (or is already resolved), or the task's ``(task_id, payload)`` when
        the budget is exhausted and the inline quarantine re-execution
        succeeded.

        Raises:
            QuarantineError: budget exhausted and inline re-execution failed.
        """
        if task_id not in self._outstanding:
            return None
        failures = self._attempts.setdefault(task_id, [])
        failures.append(failure_record(kind, detail))
        if len(failures) <= self.parent.task_retries:
            delay = backoff_delay(len(failures), task_id)
            self._requeue_at[task_id] = time.time() + delay
            obs.event(
                "task_retry_scheduled",
                transport="queue",
                task_id=task_id,
                attempt=len(failures),
                reason=kind,
                delay_s=round(delay, 3),
            )
            return None
        return self._quarantine_and_run_inline(task_id, failures)

    def _quarantine_and_run_inline(
        self, task_id: str, failures: List[Dict[str, object]]
    ) -> Tuple[str, object]:
        """Budget exhausted: quarantine the envelope, then run it inline.

        Task results are pure functions of the task dict, so a successful
        inline execution completes the run bit-identically to a healthy
        cluster run; inline failure means the task itself is poisoned and
        the run aborts with the structured report.
        """
        task = self._outstanding[task_id]
        events = obs.events_mentioning(task_id)
        directory = quarantine_task(self.spool, task_id, task, failures, events)
        obs.event(
            "task_quarantined",
            transport="queue",
            task_id=task_id,
            attempts=len(failures),
            quarantine_dir=directory,
        )
        # Withdraw every live copy so no worker re-runs a quarantined task.
        for sub, suffix in (
            ("tasks", ".task"),
            ("claimed", ".task"),
            ("claimed", ".lease"),
        ):
            try:
                os.remove(os.path.join(self.spool, sub, f"{task_id}{suffix}"))
            except OSError:
                pass
        try:
            with worker_context():
                payload = execute_task(task)
        except Exception:
            import traceback

            failures.append(failure_record("inline_failed", traceback.format_exc()))
            entry = quarantine_entry(task_id, task, failures, directory)
            quarantine_task(self.spool, task_id, task, failures, events)
            self.quarantined.append(entry)
            self._consume(task_id)
            raise QuarantineError(
                format_quarantine_report([entry]),
                task_id=task_id,
                transport="queue",
                report=[entry],
            ) from None
        self._consume(task_id)
        obs.event("task_recovered_inline", transport="queue", task_id=task_id)
        return task_id, unwrap_payload(task_id, payload)

    def _flush_requeues(self) -> None:
        """Re-enqueue retried tasks whose backoff delay has elapsed."""
        if not self._requeue_at:
            return
        now = time.time()
        for task_id, ready_at in list(self._requeue_at.items()):
            if now < ready_at:
                continue
            del self._requeue_at[task_id]
            task = self._outstanding.get(task_id)
            if task is None:
                continue  # resolved while waiting (late result arrived)
            enqueue_task(self.spool, task_id, task)

    def _scan_results(self) -> Optional[Tuple[str, object]]:
        results_dir = os.path.join(self.spool, "results")
        try:
            names = sorted(n for n in os.listdir(results_dir) if n.endswith(".result"))
        except FileNotFoundError:
            return None
        for name in names:
            task_id = name[: -len(".result")]
            path = os.path.join(results_dir, name)
            if task_id not in self._outstanding:
                if task_id in self._consumed:
                    # Duplicate delivery (a retried task's first execution
                    # also finished): clean up our own leftover.
                    obs.event(
                        "duplicate_result_dropped",
                        transport="queue",
                        task_id=task_id,
                    )
                    try:
                        os.remove(path)
                    except FileNotFoundError:
                        pass
                # Another channel's result: not ours to touch.
                continue
            try:
                with open(path, "rb") as handle:
                    loaded = pickle.load(handle)
                status, value = loaded
            except FileNotFoundError:
                continue  # another poll consumed it between listdir and open
            except (
                EOFError,
                pickle.UnpicklingError,
                AttributeError,
                ImportError,
                IndexError,
                TypeError,
                ValueError,
            ) as err:
                # Unreadable envelope.  Grace-period first: on a non-atomic
                # network filesystem this is what a publisher mid-write
                # looks like, and the complete file lands moments later.
                # An envelope still unreadable after the grace period is
                # genuinely corrupt (torn write before a crash, truncation
                # by a full disk): route the task through retry/quarantine
                # instead of crashing — or worse, silently spinning on —
                # the drain loop.
                first_seen = self._corrupt_seen.setdefault(task_id, time.time())
                grace = max(0.25, 4 * self.parent.poll_interval)
                if time.time() - first_seen <= grace:
                    continue
                self._corrupt_seen.pop(task_id, None)
                obs.event(
                    "result_corrupt",
                    transport="queue",
                    task_id=task_id,
                    error=repr(err),
                )
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
                release_claim(self.spool, task_id)
                recovered = self._handle_failure(
                    task_id, "result_corrupt", repr(err)
                )
                if recovered is not None:
                    return recovered
                continue
            self._corrupt_seen.pop(task_id, None)
            if status == "error":
                # Resolve the failure *before* consuming: a retried task
                # must stay outstanding so its re-execution is collected.
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
                release_claim(self.spool, task_id)
                obs.event(
                    "task_failed",
                    transport="queue",
                    task_id=task_id,
                    traceback=value,
                )
                recovered = self._handle_failure(task_id, "task_error", value)
                if recovered is not None:
                    return recovered
                continue
            self._consume(task_id)
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
            return task_id, unwrap_payload(task_id, value)
        return None

    def _requeue_stale_claims(self) -> Optional[Tuple[str, object]]:
        """Expire stale leases into the retry/quarantine path.

        Returns a ``(task_id, payload)`` only when a task exhausted its
        budget on lease expiries and the inline quarantine re-execution
        produced its result.
        """
        claimed_dir = os.path.join(self.spool, "claimed")
        now = time.time()
        try:
            names = [n for n in os.listdir(claimed_dir) if n.endswith(".task")]
        except FileNotFoundError:
            return None
        for name in names:
            task_id = name[: -len(".task")]
            if task_id not in self._outstanding or task_id in self._requeue_at:
                continue
            lease = os.path.join(claimed_dir, f"{task_id}.lease")
            try:
                last_beat = os.path.getmtime(lease)
            except FileNotFoundError:
                # Claimed but never leased (claimant died instantly): age it
                # from when the parent first noticed the claim.
                last_beat = self._claim_seen.setdefault(task_id, now)
            if now - last_beat <= self.parent.lease_timeout:
                continue
            obs.event(
                "lease_expired",
                transport="queue",
                task_id=task_id,
                stale_s=round(now - last_beat, 3),
            )
            source = os.path.join(claimed_dir, name)
            try:
                os.remove(source)
            except FileNotFoundError:
                continue  # the claimant finished after all
            try:
                os.remove(lease)
            except FileNotFoundError:
                pass
            self._claim_seen.pop(task_id, None)
            self.retries += 1
            obs.event("task_retried", transport="queue", task_id=task_id)
            recovered = self._handle_failure(
                task_id, "lease_expired", f"no heartbeat for {now - last_beat:.3f}s"
            )
            if recovered is not None:
                return recovered
        return None

    def next_result(self, timeout: float = CHUNK_TIMEOUT) -> Tuple[str, object]:
        if not self._outstanding:
            raise TransportError("queue transport has no outstanding tasks")
        parent = self.parent
        deadline = time.time() + timeout
        last_progress = time.time()
        while True:
            if parent.closed:
                # A sibling consumer's failure discarded the shared spool;
                # fail fast so this consumer's inline fallback engages now
                # instead of after the full collect timeout.
                raise TransportError("queue transport was closed")
            if not os.path.isdir(os.path.join(self.spool, "tasks")):
                # Spool deleted out from under us (operator GC, tmpdir
                # cleanup): no result can ever arrive — fail fast so the
                # degradation ladder engages instead of the full timeout.
                raise TransportError(f"queue spool vanished: {self.spool}")
            found = self._scan_results()
            if found is not None:
                return found
            self._flush_requeues()
            recovered = self._requeue_stale_claims()
            if recovered is not None:
                return recovered
            parent._sweep_orphan_results()
            now = time.time()
            if (
                parent._live_workers() == 0
                or now - last_progress > parent.self_drain_after
            ):
                if parent._drain_one():
                    continue
            if now > deadline:
                raise TimeoutError(
                    f"no queue result within {timeout:.0f}s "
                    f"({len(self._outstanding)} outstanding)"
                )
            time.sleep(parent.poll_interval)


# -- resolution --------------------------------------------------------------
def default_transport_name() -> str:
    """The transport spec used when none is requested explicitly."""
    if _default_name is not None:
        return _default_name
    return envvars.TRANSPORT.read() or DEFAULT_TRANSPORT_NAME


def set_default_transport(spec: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the process-wide default transport spec.

    Returns:
        The previous override, so callers can restore it (the experiment
        runner's ``--transport`` flag uses this exactly like ``--backend``).

    Raises:
        ValueError: for unknown transport names.
    """
    global _default_name
    if spec is not None:
        parse_transport_spec(spec)  # validate eagerly
    previous = _default_name
    _default_name = spec
    return previous


def parse_transport_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a transport spec into ``(name, queue_spool_dir)``.

    Raises:
        ValueError: for names outside :data:`TRANSPORTS`.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if name not in TRANSPORTS:
        raise ValueError(f"unknown transport {spec!r}; choose from {TRANSPORTS}")
    if rest and name != "queue":
        raise ValueError(f"only the queue transport takes a spool dir, got {spec!r}")
    spool = rest.strip() or None
    if name == "queue" and spool is None:
        spool = envvars.QUEUE_DIR.read()
    return name, spool


def _queue_workers(owns_spool: bool, jobs: int) -> int:
    workers = envvars.QUEUE_WORKERS.read()
    if workers is not None:
        return workers
    return jobs if owns_spool else 0


#: (name, spool, workers, jobs) -> shared transport; queue transports spawn
#: worker processes, so they are reused across runs like the mp pool is.
_shared: Dict[Tuple, Transport] = {}


def resolve_transport(
    spec: Optional[str] = None, jobs: Optional[int] = None
) -> Transport:
    """Build (or reuse) the transport for a spec; see the module docstring.

    Raises:
        ValueError: for unknown transport names.
        TransportError: when the transport cannot be built (e.g. the mp
            pool is unavailable) — callers fall back to inline execution.
    """
    name, spool = parse_transport_spec(spec or default_transport_name())
    jobs = resolve_jobs(jobs)
    if name == "local":
        return LocalTransport()
    if name == "mp":
        return MpTransport(jobs=jobs)
    workers = _queue_workers(owns_spool=spool is None, jobs=jobs)
    # The resolved lease timeout participates in the share key so a changed
    # REPRO_LEASE_TIMEOUT / set_default_lease_timeout builds a fresh
    # transport instead of silently reusing one with the old timeout.
    key = (name, spool, workers, jobs, resolve_lease_timeout())
    shared = _shared.get(key)
    if shared is None:
        shared = QueueTransport(spool=spool, workers=workers, jobs=jobs)
        _shared[key] = shared
    # Each consumer gets a private channel: during ATPG the PODEM scheduler
    # and the dropping fault simulator both hold tasks in flight on this
    # spool concurrently, and must never consume each other's results.
    return shared.channel()


def discard_transport(transport: Transport) -> None:
    """Drop a failed transport so the next run starts fresh.

    A broken mp transport poisons the shared pool (mirroring the sharded
    backend's behaviour); a broken queue transport is closed and evicted
    from the shared set so the next resolution builds a new spool.
    """
    if isinstance(transport, MpTransport):
        from repro.engine.pool import discard_broken_pool

        discard_broken_pool()
        return
    if isinstance(transport, QueueChannel):
        transport = transport.parent
    for key, value in list(_shared.items()):
        if value is transport:
            del _shared[key]
    try:
        transport.close()
    except Exception:  # repro: allow[R6] discard runs on already-broken
        pass  # transports; a failing close is the expected case here


def shutdown_shared_transports() -> None:
    """Close every shared transport (registered with :mod:`atexit`)."""
    for transport in list(_shared.values()):
        try:
            transport.close()
        except Exception:  # repro: allow[R6] atexit teardown: workers and
            pass  # the event spool may already be gone mid-interpreter-exit
    _shared.clear()


import atexit

atexit.register(shutdown_shared_transports)
