"""Shared task/merge protocol for distributed simulation work units.

Everything a worker needs to execute one unit of simulation work — and
everything a parent needs to plan, encode and deterministically merge those
units — lives here, in one module consumed by both the in-process sharded
backend (:mod:`repro.engine.sharded`) and the queue-backed cluster executor
(:mod:`repro.cluster`).  The three work-unit kinds:

* ``"simulate"`` — grade a chunk of faults over a pattern range on the
  compiled program (fault-list chunks and pattern-block shards both encode
  to this kind; they differ only in the slice they carry).
* ``"podem"`` — run compiled ternary PODEM on a chunk of fault sites.
* ``"cell"`` — one experiment-runner (artifact x benchmark) cell.

Tasks are plain picklable dicts with a ``"kind"`` key; :func:`execute_task`
is the single dispatch point every transport calls, so a task produces the
same payload whether it runs in the parent process, in a spawn-pool worker,
or in a ``python -m repro.cluster.worker`` process on another host.

**Determinism.**  Per-task results are pure functions of the task dict, and
the merges are order-independent: fault chunks are disjoint (scatter),
pattern shards min-merge first-detect indices (:func:`min_merge`), PODEM
results are consumed strictly in fault-list order, and runner cells merge in
fixed cell order.  Duplicate delivery of a task is therefore harmless — the
re-executed task returns identical bytes and the merge is idempotent — which
is what lets the queue transport retry lost leases without coordination.

**Adaptive chunk sizing.**  Fault cones differ wildly in size, so equal-count
fault chunks load-balance poorly.  :class:`AdaptiveChunker` sizes each
subsequent chunk from the per-chunk ``cone_evaluations`` counters the
completed chunks report, targeting a constant amount of *work* (not fault
count) per task; the static equal-count plan remains available as a forced
fallback (``REPRO_CHUNK_PLAN=static``).  Chunk boundaries never affect
results — only scheduling.
"""

from __future__ import annotations

import pickle
import uuid
import weakref
from collections import OrderedDict
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import envvars
from repro.engine.compile import CompiledCircuit
from repro.engine.fault import (
    _new_stats,
    packed_first_detects,
    packed_first_detects_faults,
    packed_first_detects_words,
)
from repro.engine.packed import (
    evaluate_lanes,
    evaluate_words,
    pack_lanes,
    pack_patterns,
)
from repro.engine.ternary import CompiledTernaryPodem, RawPodemResult
from repro.obs import recorder as obs

#: Target number of work chunks per worker; >1 gives the pool slack to
#: load-balance chunks whose cones differ wildly in size.
CHUNKS_PER_WORKER = 4

#: Key under which a task's captured telemetry snapshot rides in the result
#: payload envelope (see :func:`execute_task` / :func:`unwrap_payload`).
OBS_PAYLOAD_KEY = "__repro_obs__"

#: Never make a fault chunk smaller than this (per-task overhead floor).
MIN_CHUNK_FAULTS = 8

#: Per-chunk stats counters merged back into the parent's ``last_run_stats``.
CHUNK_STAT_KEYS = (
    "blocks",
    "cone_evaluations",
    "dropped_block_evaluations",
    "fault_words",
)

#: Environment variable forcing the fault-chunk plan (``adaptive``/``static``).
CHUNK_PLAN_ENV_VAR = envvars.CHUNK_PLAN.name

CHUNK_PLANS = envvars.CHUNK_PLANS

#: Environment variable marking a process as a cluster worker; simulators
#: inside a worker always run inline (never nest executors).
WORKER_ENV_VAR = envvars.CLUSTER_WORKER.name

_in_worker_context = 0


def resolve_chunk_plan(plan: Optional[str] = None) -> str:
    """Resolve the fault-chunk planning mode (arg > env > ``adaptive``).

    Raises:
        ValueError: for names outside :data:`CHUNK_PLANS`.
    """
    if plan is None:
        plan = envvars.CHUNK_PLAN.read() or "adaptive"
    if plan not in CHUNK_PLANS:
        raise ValueError(f"unknown chunk plan {plan!r}; choose from {CHUNK_PLANS}")
    return plan


def in_worker_context() -> bool:
    """Whether this code is already running inside some task executor.

    True in spawn-pool workers (detected via ``multiprocessing``), in
    ``python -m repro.cluster.worker`` processes (env var), and while the
    parent itself is executing a task inline (local transport or queue
    self-drain).  Work scheduled from such a context must run inline —
    executors never nest.
    """
    if _in_worker_context > 0:
        return True
    if envvars.CLUSTER_WORKER.is_set():
        return True
    import multiprocessing

    return multiprocessing.parent_process() is not None


class worker_context:
    """Context manager marking in-process task execution (re-entrant)."""

    def __enter__(self) -> "worker_context":
        global _in_worker_context
        _in_worker_context += 1
        return self

    def __exit__(self, *exc) -> None:
        global _in_worker_context
        _in_worker_context -= 1


# -- program shipping --------------------------------------------------------
#: id(program) -> (weakref, key, pickled bytes); pickling a compiled program
#: happens once per program, the bytes ride along with every chunk task and
#: workers unpickle once per (worker, key).
_blob_cache: Dict[int, Tuple["weakref.ref", str, bytes]] = {}


def pickled_program(program: CompiledCircuit) -> Tuple[str, bytes]:
    """``(key, blob)`` for shipping ``program`` to workers (memoised)."""
    ident = id(program)
    entry = _blob_cache.get(ident)
    if entry is not None:
        ref, key, blob = entry
        if ref() is program:
            return key, blob
    # repro: allow[R1] the key is a worker-cache identity for this process's
    # program blob, used for dedup only — it never reaches result payloads.
    key = f"{program.name}:{uuid.uuid4().hex}"
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    _blob_cache[ident] = (
        weakref.ref(program, lambda _ref, _ident=ident: _blob_cache.pop(_ident, None)),
        key,
        blob,
    )
    return key, blob


# -- worker-side caches ------------------------------------------------------
_WORKER_CACHE_LIMIT = 8
_worker_programs: "OrderedDict[str, CompiledCircuit]" = OrderedDict()
#: (program_key, patterns_key, fault_mode) -> good-machine lanes or word table.
_worker_good: "OrderedDict[Tuple[str, str, str], object]" = OrderedDict()
#: (program_key, backtrack_limit) -> reusable per-worker ternary PODEM engine.
_worker_podem: "OrderedDict[Tuple[str, int], CompiledTernaryPodem]" = OrderedDict()


def _cache_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _WORKER_CACHE_LIMIT:
        cache.popitem(last=False)


def _worker_program(key: str, blob: bytes) -> CompiledCircuit:
    program = _worker_programs.get(key)
    if program is None:
        program = pickle.loads(blob)
        _cache_put(_worker_programs, key, program)
    return program


def _worker_good_machine(
    program: CompiledCircuit,
    task: Dict[str, object],
) -> object:
    """The cached good machine for a task: big-int lanes or a uint64 table."""
    fault_mode = task["fault_mode"]
    cache_key = (task["program_key"], task["patterns_key"], fault_mode)
    good = _worker_good.get(cache_key)
    if good is None:
        n_patterns = task["n_patterns"]
        with obs.span(f"logic_sim/{program.name}/{fault_mode}"):
            if fault_mode == "words":
                good = evaluate_words(program, task["input_words"], n_patterns)
            else:
                mask = (1 << n_patterns) - 1
                good = evaluate_lanes(program, list(task["input_lanes"]), mask)
        _cache_put(_worker_good, cache_key, good)
    return good


# -- task encoding -----------------------------------------------------------
def simulate_base_task(
    program: CompiledCircuit,
    matrix: np.ndarray,
    n_patterns: int,
    fault_kernel: str,
    block_patterns: int,
    drop_detected: bool,
) -> Dict[str, object]:
    """The per-run invariants every ``"simulate"`` chunk task shares.

    ``fault_kernel`` is the *resolved* grading kernel (``"lanes"`` /
    ``"words"`` / ``"faults"``, never ``"auto"``): the parent resolves it
    once from the full run shape and every chunk grades on it, so chunking
    never changes the kernel.  The packed inputs ship in whichever
    representation that kernel reads (the word table for ``words``, big-int
    lanes otherwise); every chunk of one run reuses a single cached good
    machine per worker either way.
    """
    patterns_key = blake2b(
        matrix.tobytes() + repr(matrix.shape).encode(), digest_size=16
    ).hexdigest()
    program_key, program_blob = pickled_program(program)
    base: Dict[str, object] = {
        "kind": "simulate",
        "program_key": program_key,
        "program_blob": program_blob,
        "patterns_key": patterns_key,
        "fault_mode": fault_kernel,
        "n_patterns": n_patterns,
        "block_patterns": block_patterns,
        "drop_detected": drop_detected,
    }
    if fault_kernel == "words":
        base["input_words"] = pack_patterns(matrix)
    else:
        base["input_lanes"] = pack_lanes(matrix)
    if obs.enabled():
        # Ask workers to capture telemetry even if they were spawned before
        # tracing was enabled programmatically (REPRO_TRACE propagates via
        # the environment; obs.enable() does not).
        base["obs"] = True
        if obs.timeline_enabled():
            base["timeline"] = True
    return base


def simulate_task(
    base_task: Dict[str, object],
    sites: Sequence[int],
    stuck_values: Sequence[int],
    pattern_start: int,
    pattern_stop: int,
) -> Dict[str, object]:
    """Encode one fault-chunk / pattern-shard grading task."""
    return dict(
        base_task,
        sites=list(sites),
        stuck_values=list(stuck_values),
        pattern_start=pattern_start,
        pattern_stop=pattern_stop,
    )


def podem_base_task(
    program: CompiledCircuit, backtrack_limit: int
) -> Dict[str, object]:
    """The per-run invariants every ``"podem"`` chunk task shares."""
    program_key, program_blob = pickled_program(program)
    base: Dict[str, object] = {
        "kind": "podem",
        "program_key": program_key,
        "program_blob": program_blob,
        "backtrack_limit": backtrack_limit,
    }
    if obs.enabled():
        base["obs"] = True
        if obs.timeline_enabled():
            base["timeline"] = True
    return base


def podem_task(
    base_task: Dict[str, object],
    sites: Sequence[int],
    stuck_values: Sequence[int],
) -> Dict[str, object]:
    """Encode one PODEM fault-chunk task."""
    return dict(base_task, sites=list(sites), stuck_values=list(stuck_values))


def cell_task(cell, seed: int, backend_name: str) -> Dict[str, object]:
    """Encode one experiment-runner cell task."""
    task: Dict[str, object] = {
        "kind": "cell",
        "cell": cell,
        "seed": seed,
        "backend": backend_name,
    }
    if obs.enabled():
        task["obs"] = True
        if obs.timeline_enabled():
            task["timeline"] = True
    return task


# -- task execution ----------------------------------------------------------
def simulate_chunk(task: Dict[str, object]) -> Tuple[List[Optional[int]], Dict[str, int]]:
    """Execute a ``"simulate"`` task: grade faults over one pattern range."""
    program = _worker_program(task["program_key"], task["program_blob"])
    good = _worker_good_machine(program, task)
    stats = _new_stats()
    first_detects = {
        "words": packed_first_detects_words,
        "faults": packed_first_detects_faults,
    }.get(task["fault_mode"], packed_first_detects)
    with obs.span(f"fault_sim/{program.name}/{task['fault_mode']}/grade"):
        first = first_detects(
            program,
            good,
            task["n_patterns"],
            task["sites"],
            task["stuck_values"],
            block_patterns=task["block_patterns"],
            drop_detected=task["drop_detected"],
            pattern_start=task["pattern_start"],
            pattern_stop=task["pattern_stop"],
            stats=stats,
        )
    # Kernel counters flush per chunk into the task's captured snapshot
    # (the parent absorbs snapshots deduped by task id); the parent-side
    # simulators flush only result-level counters, so nothing double-counts.
    obs.add_counters(stats, prefix="fault_sim.")
    return first, stats


def podem_chunk(task: Dict[str, object]) -> List[RawPodemResult]:
    """Execute a ``"podem"`` task: compiled PODEM on one chunk of fault sites.

    The engine is cached per (program, backtrack limit); every ``run`` call
    rebuilds its per-fault state from the cached all-X baseline, so results
    are independent of how faults are chunked across workers.
    """
    program = _worker_program(task["program_key"], task["program_blob"])
    key = (task["program_key"], task["backtrack_limit"])
    engine = _worker_podem.get(key)
    if engine is None:
        engine = CompiledTernaryPodem(program, backtrack_limit=task["backtrack_limit"])
        _cache_put(_worker_podem, key, engine)
    with obs.span(f"atpg/{program.name}/podem_chunk"):
        return [
            engine.run(site, stuck)
            for site, stuck in zip(task["sites"], task["stuck_values"])
        ]


def run_cell(task: Dict[str, object]):
    """Execute a ``"cell"`` task: one experiment-runner cell.

    Imported lazily — the runner sits above the engine layer, and pulling it
    in at module import would create a cycle.
    """
    from repro.engine.backend import default_backend_name, set_default_backend
    from repro.experiments.runner import _run_cell

    backend_name = task["backend"]
    if default_backend_name() != backend_name:
        set_default_backend(backend_name)
    return _run_cell(task["cell"], task["seed"])


def echo(task: Dict[str, object]) -> object:
    """Execute an ``"echo"`` task: return its payload (diagnostics/tests).

    Failure hooks for exercising the retry/quarantine machinery: ``fail``
    raises unconditionally; ``attempt_marker`` (a file path) counts
    executions durably across processes, and ``fail_until_attempt`` raises
    while the recorded execution count is below the threshold — a task that
    deterministically fails N-1 times, then succeeds.
    """
    import time

    seconds = task.get("sleep", 0)
    if seconds:
        time.sleep(seconds)
    attempt = 0
    marker = task.get("attempt_marker")
    if marker:
        with open(marker, "a", encoding="utf-8") as handle:
            handle.write("x\n")
        with open(marker, "r", encoding="utf-8") as handle:
            attempt = sum(1 for _ in handle)
    if task.get("fail"):
        raise RuntimeError(f"echo task failed on request: {task['fail']}")
    threshold = task.get("fail_until_attempt")
    if threshold is not None and attempt < int(threshold):
        raise RuntimeError(
            f"echo task failing until attempt {threshold} (attempt {attempt})"
        )
    return task.get("payload")


_EXECUTORS = {
    "simulate": simulate_chunk,
    "podem": podem_chunk,
    "cell": run_cell,
    "echo": echo,
}


def execute_task(task: Dict[str, object]):
    """Run one work unit; the single entry point every transport dispatches to.

    When telemetry is on — in this process (``obs.enabled()``) or requested
    by the submitting parent (the task's ``"obs"`` flag) — execution runs
    inside :class:`repro.obs.recorder.task_capture` and the captured
    counters/spans/events ride back with the result in an envelope dict
    (:data:`OBS_PAYLOAD_KEY`).  Transports strip the envelope with
    :func:`unwrap_payload`, which also merges the snapshot into the parent
    recorder exactly once per task id.
    """
    try:
        runner = _EXECUTORS[task["kind"]]
    except KeyError:
        raise ValueError(f"unknown task kind {task.get('kind')!r}") from None
    if not (task.get("obs") or obs.enabled()):
        return runner(task)
    # The submitting parent's timeline request rides the task dict (like the
    # "obs" flag); otherwise the capture inherits the local recorder's tier.
    capture = obs.task_capture(timeline=True if task.get("timeline") else None)
    with capture:
        payload = runner(task)
    return {OBS_PAYLOAD_KEY: capture.snapshot(), "payload": payload}


def unwrap_payload(task_id: object, payload: object) -> object:
    """Strip a telemetry envelope from one result payload.

    Absorbs the captured snapshot into the active recorder — deduped by
    task id, so re-delivered queue results and stale-lease re-executions
    can never double-count — and returns the bare payload.  Payloads
    without an envelope (tracing off, pre-telemetry workers) pass through
    untouched; envelopes from tracing-enabled workers are stripped even
    when the parent traces nothing (the null recorder drops the snapshot).
    """
    if isinstance(payload, dict) and OBS_PAYLOAD_KEY in payload:
        obs.absorb_task(task_id, payload[OBS_PAYLOAD_KEY])
        return payload["payload"]
    return payload


# -- planning ----------------------------------------------------------------
def plan_chunks(
    jobs: int,
    n_faults: int,
    n_patterns: int,
    block_patterns: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
    min_chunk_faults: int = MIN_CHUNK_FAULTS,
) -> Optional[Tuple[str, List[Tuple[int, int]]]]:
    """Pick a sharding strategy, or ``None`` when sharding cannot pay.

    Returns ``("fault-chunks", [(lo, hi), ...])`` — disjoint fault-index
    ranges, every chunk grading the full pattern set — or
    ``("pattern-shards", [(start, stop), ...])`` — block-aligned pattern
    ranges, every shard grading all faults — or ``None`` for inline runs.
    """
    max_chunks = jobs * chunks_per_worker
    n_blocks = -(-n_patterns // block_patterns)
    if n_faults < 2 * min_chunk_faults:
        # Too few faults to split the fault axis; shard pattern blocks
        # instead when there are enough of them to go around.
        if n_faults and n_blocks >= 4:
            n_shards = min(max_chunks, n_blocks)
            blocks_per_shard = -(-n_blocks // n_shards)
            step = blocks_per_shard * block_patterns
            shards = [
                (start, min(start + step, n_patterns))
                for start in range(0, n_patterns, step)
            ]
            if len(shards) > 1:
                return "pattern-shards", shards
        return None
    chunk = max(min_chunk_faults, -(-n_faults // max_chunks))
    chunks = [(lo, min(lo + chunk, n_faults)) for lo in range(0, n_faults, chunk)]
    if len(chunks) > 1:
        return "fault-chunks", chunks
    return None


class AdaptiveChunker:
    """Sizes successive fault chunks from observed per-fault cone cost.

    The first wave of chunks uses the static plan's equal-count size; once
    completed chunks report their ``cone_evaluations``, each next chunk is
    sized so its *estimated work* (faults x running mean cost per fault)
    matches the work of an average static chunk.  Cheap tails therefore get
    merged into fewer, larger tasks (less per-task overhead — fault dropping
    makes late chunks cheap) while unexpectedly heavy regions are split
    finer (better load balance).

    Chunk boundaries are a pure scheduling choice: fault chunks are disjoint
    and merge by scatter, so results are bit-identical for every sizing
    decision — which is also why feedback arriving in any order is fine.

    Args:
        n_faults: total fault count being chunked.
        initial_chunk: first-wave chunk size (the static plan's size).
        min_chunk: never go below this many faults per chunk.
        max_chunk: never go above this many faults per chunk (defaults to
            4x the initial size, bounding how coarse the tail can get).
    """

    def __init__(
        self,
        n_faults: int,
        initial_chunk: int,
        min_chunk: int = MIN_CHUNK_FAULTS,
        max_chunk: Optional[int] = None,
    ) -> None:
        self.n_faults = int(n_faults)
        self.initial_chunk = max(1, int(initial_chunk))
        self.min_chunk = max(1, int(min_chunk))
        self.max_chunk = (
            max(self.initial_chunk, int(max_chunk))
            if max_chunk is not None
            else 4 * self.initial_chunk
        )
        #: Work (cone evaluations) a static chunk would carry, re-estimated
        #: as feedback arrives; the target each adaptive chunk aims for.
        self._target_evals: Optional[float] = None
        self._seen_faults = 0
        self._seen_evals = 0
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= self.n_faults

    def record(self, n_faults_graded: int, cone_evaluations: int) -> None:
        """Feed back one completed chunk's size and measured work."""
        if n_faults_graded <= 0:
            return
        self._seen_faults += n_faults_graded
        self._seen_evals += max(0, int(cone_evaluations))
        if self._target_evals is None:
            # Anchor the per-chunk work target on the first measurement: the
            # work an average initial-size chunk carries.
            self._target_evals = (
                self._seen_evals / self._seen_faults
            ) * self.initial_chunk

    def _next_size(self) -> int:
        if self._target_evals is None or self._seen_evals <= 0:
            return self.initial_chunk
        mean_cost = self._seen_evals / self._seen_faults
        if mean_cost <= 0:
            return self.max_chunk
        size = int(round(self._target_evals / mean_cost))
        return max(self.min_chunk, min(self.max_chunk, size))

    def next_bounds(self) -> Optional[Tuple[int, int]]:
        """The next ``(lo, hi)`` fault range, or ``None`` when exhausted."""
        if self.exhausted:
            return None
        lo = self._cursor
        hi = min(self.n_faults, lo + self._next_size())
        # Don't leave a sub-minimum orphan tail behind.
        if self.n_faults - hi < self.min_chunk:
            hi = self.n_faults
        self._cursor = hi
        return lo, hi


# -- merging -----------------------------------------------------------------
def min_merge(
    first: List[Optional[int]],
    positions: Sequence[int],
    chunk_first: Sequence[Optional[int]],
) -> None:
    """Fold one chunk's first-detect indices into the merged vector.

    Taking the minimum detecting index per fault is commutative, associative
    and idempotent, so the merged result is independent of task arrival
    order and unaffected by duplicate deliveries — the properties the
    lease-retrying queue transport relies on.  Fault-chunk results (disjoint
    positions) reduce to a plain scatter under the same operation.
    """
    for index, found in zip(positions, chunk_first):
        if found is not None and (first[index] is None or found < first[index]):
            first[index] = found


def merge_chunk_stats(stats: Dict[str, object], chunk_stats: Dict[str, int]) -> None:
    """Accumulate one chunk's work counters into the run's stats.

    Missing keys count as zero so journaled chunk results recorded before a
    counter existed still replay cleanly.
    """
    for key in CHUNK_STAT_KEYS:
        stats[key] += chunk_stats.get(key, 0)
