"""Runtime order-independence sanitizer (``REPRO_SANITIZE=1``).

The cluster's correctness rests on one algebraic fact: the first-detect
merge (:func:`repro.cluster.protocol.min_merge`) is commutative,
associative and idempotent, so result envelopes may arrive in any order,
duplicated, from any transport — and the merged vector is identical.
The parity suites test that fact empirically for the schedules they
happen to produce; the sanitizer checks it on *every* run it is armed
for, against adversarial schedules the real transports may never emit.

With ``REPRO_SANITIZE=1``, :class:`MergeShadow` records every
``(positions, chunk_first)`` envelope the live merge consumed, then
re-merges the same envelopes from scratch in reversed and in
fixed-seed-shuffled order and asserts the result equals the live vector
byte-for-byte.  A mismatch raises :class:`SanitizerError` — loudly, with
the diverging positions — instead of letting an order-dependent merge
ship behind a lucky schedule.

Cost: O(envelopes) memory and two extra in-process merges; no tasks are
re-executed.  Each verification bumps the ``cluster.sanitize_checks``
counter so runs can prove the sanitizer was actually armed.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro import envvars
from repro.obs import recorder as obs

#: Fixed shuffle seed: the adversarial order must itself replay identically.
SHUFFLE_SEED = 0x5EED


class SanitizerError(AssertionError):
    """A shadow re-merge diverged from the live merge: order dependence."""


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` arms the sanitizer for this process."""
    return envvars.SANITIZE.read()


class MergeShadow:
    """Records merge envelopes and replays them in adversarial orders.

    Args:
        n_items: length of the merged vector (one slot per fault).
        merge: the in-place merge ``merge(acc, positions, values)``; must
            be the same callable the live path uses.
        label: run identifier used in failure messages.
    """

    def __init__(
        self,
        n_items: int,
        merge: Callable[[List[Optional[int]], Sequence[int], Sequence[Optional[int]]], None],
        label: str = "merge",
    ):
        self.n_items = int(n_items)
        self.merge = merge
        self.label = label
        self.records: List[Tuple[List[int], List[Optional[int]]]] = []

    def record(self, positions: Sequence[int], values: Sequence[Optional[int]]) -> None:
        """Capture one result envelope exactly as the live merge saw it."""
        self.records.append((list(positions), list(values)))

    def _replay(self, order: Sequence[int]) -> List[Optional[int]]:
        merged: List[Optional[int]] = [None] * self.n_items
        for index in order:
            positions, values = self.records[index]
            self.merge(merged, positions, values)
        return merged

    def _orders(self) -> List[List[int]]:
        count = len(self.records)
        reversed_order = list(range(count - 1, -1, -1))
        shuffled = list(range(count))
        random.Random(SHUFFLE_SEED).shuffle(shuffled)
        return [reversed_order, shuffled]

    def verify(self, live: Sequence[Optional[int]]) -> None:
        """Assert the recorded envelopes merge order-independently to ``live``.

        Raises:
            SanitizerError: when any adversarial order produces a different
                merged vector than the live run.
        """
        expected = list(live)
        if len(expected) != self.n_items:
            raise SanitizerError(
                f"{self.label}: live vector has {len(expected)} items, "
                f"shadow expected {self.n_items}"
            )
        for order in self._orders():
            replayed = self._replay(order)
            obs.counter("cluster.sanitize_checks")
            if replayed != expected:
                diverged = [
                    index
                    for index, (got, want) in enumerate(zip(replayed, expected))
                    if got != want
                ]
                raise SanitizerError(
                    f"{self.label}: shadow re-merge of {len(self.records)} "
                    f"result envelopes in permuted order diverged from the "
                    f"live merge at {len(diverged)} position(s) "
                    f"(first: {diverged[:5]}) — the merge is order-dependent"
                )


def shadow_for(
    n_items: int,
    merge: Callable[[List[Optional[int]], Sequence[int], Sequence[Optional[int]]], None],
    label: str = "merge",
) -> Optional[MergeShadow]:
    """A :class:`MergeShadow` when the sanitizer is armed, else ``None``."""
    if not enabled():
        return None
    return MergeShadow(n_items, merge, label=label)
