"""Baseline files: checked-in fingerprints of accepted findings.

A baseline is a small JSON document listing finding fingerprints that the
analyzer should treat as known (grandfathered or deliberately accepted).
Baselined findings are reported separately and never fail the run; a
fingerprint goes stale — and silently drops out of effect — as soon as
the offending line changes, because fingerprints hash the line's text.

Format (stable, diff-friendly)::

    {
      "version": 1,
      "fingerprints": {
        "<hex>": "src/repro/x.py:12 R6 <message>",
        ...
      }
    }

The values are human context only; matching uses the keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """The fingerprints a baseline file accepts.

    Raises:
        ValueError: for files that are not a version-1 baseline document —
            a malformed baseline must not silently accept nothing (or
            everything).
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise ValueError(f"baseline {path} is not valid JSON: {err}") from None
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} must be a version-{BASELINE_VERSION} document"
        )
    fingerprints = data.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path} lacks a 'fingerprints' mapping")
    return set(fingerprints)


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as a fresh baseline (sorted, stable output)."""
    entries = {
        f.fingerprint: f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    }
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": {key: entries[key] for key in sorted(entries)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
