"""Project-specific static analysis and runtime sanitizers.

``python -m repro.analysis [--format human|json] [--baseline FILE]
[paths...]`` runs six AST rules encoding the invariants the dynamic
parity suites can only spot-check:

* **R1 determinism** — no unseeded RNGs, wall-clock reads or set-order
  iteration in result-bearing modules;
* **R2 tail-mask** — word-table consumers outside ``engine/packed.py``
  must self-mask (``n_patterns``) or apply ``tail_mask``;
* **R3 envvar registry** — every ``REPRO_*`` read resolves to a
  declaration in :mod:`repro.envvars`; the README table must match;
* **R4 spawn safety** — task handlers and pool callables must be
  module-level and importable under spawn;
* **R5 obs grammar** — counters/spans must parse and be declared in
  :mod:`repro.obs.manifest`;
* **R6 silent except** — broad handlers re-raise, emit ``obs.event``,
  or carry a documented suppression.

:mod:`repro.analysis.sanitizer` is the runtime half: under
``REPRO_SANITIZE=1`` the cluster's merge is shadow-replayed in
adversarial envelope orders and must reproduce the live result exactly.
"""

from repro.analysis.core import (
    AnalysisContext,
    AnalysisReport,
    Finding,
    ModuleInfo,
    run_analysis,
)
from repro.analysis.registry import RULES, all_rules, project_rule, rule
from repro.analysis.sanitizer import MergeShadow, SanitizerError, shadow_for

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Finding",
    "MergeShadow",
    "ModuleInfo",
    "RULES",
    "SanitizerError",
    "all_rules",
    "project_rule",
    "rule",
    "run_analysis",
    "shadow_for",
]
