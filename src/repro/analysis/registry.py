"""Pluggable rule registry for :mod:`repro.analysis`.

A *rule* bundles one invariant the parity suites only test dynamically —
e.g. "merges must be order-independent" — into a static check.  Rules
register themselves at import time via the :func:`rule` /
:func:`project_rule` decorators; the runner iterates :data:`RULES` in id
order, so adding a rule is one new module under ``repro/analysis/rules/``
plus an import in that package's ``__init__``.

Two check shapes exist:

* **module checks** run once per analyzed Python file and receive
  ``(module, ctx)`` — a parsed :class:`~repro.analysis.core.ModuleInfo`
  and the run's :class:`~repro.analysis.core.AnalysisContext`;
* **project checks** run once per analysis run and receive ``(ctx,)`` —
  for whole-repo invariants such as README table drift.

Both are generators yielding :class:`~repro.analysis.core.Finding`.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class Rule:
    """One registered rule: an id (``R1``..), a short name and its checks."""

    def __init__(self, rule_id: str, name: str, doc: str = ""):
        self.id = rule_id
        self.name = name
        self.doc = doc
        self.module_checks: List[Callable] = []
        self.project_checks: List[Callable] = []


#: All registered rules, keyed by rule id.
RULES: Dict[str, Rule] = {}


def _get(rule_id: str, name: str, doc: str) -> Rule:
    entry = RULES.get(rule_id)
    if entry is None:
        entry = RULES[rule_id] = Rule(rule_id, name, doc)
    if doc and not entry.doc:
        entry.doc = doc
    return entry


def rule(rule_id: str, name: str):
    """Register a per-module check under ``rule_id``."""

    def wrap(fn: Callable) -> Callable:
        _get(rule_id, name, fn.__doc__ or "").module_checks.append(fn)
        return fn

    return wrap


def project_rule(rule_id: str, name: str):
    """Register a once-per-run project check under ``rule_id``."""

    def wrap(fn: Callable) -> Callable:
        _get(rule_id, name, fn.__doc__ or "").project_checks.append(fn)
        return fn

    return wrap


def all_rules() -> List[Rule]:
    """Registered rules in id order (stable report ordering)."""
    return [RULES[key] for key in sorted(RULES)]
