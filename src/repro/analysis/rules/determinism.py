"""R1 — determinism lint for result-bearing modules.

The paper's reproduction contract is bit-identical output across backends,
transports and retry schedules.  Three static patterns break that contract
and all have slipped into similar codebases before:

* drawing from the **unseeded global RNG** (``random.shuffle`` /
  ``np.random.rand`` ...) instead of a seeded ``random.Random`` /
  ``np.random.default_rng`` instance;
* letting **wall-clock or entropy sources** (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``) flow into result
  payloads or merge order;
* **iterating a set** into ordered protocol output — hash order is
  process-dependent under ``PYTHONHASHSEED``.

The rule is scoped to the modules whose output is part of the determinism
contract (engine, cubes, ATPG, fill/ordering/power pipeline, circuit
builders, and the cluster protocol/merge layer).  Telemetry and forensic
timestamps live outside that scope on purpose: ``repro.obs`` event
timestamps and retry bookkeeping never feed result payloads.

``time.perf_counter`` / ``time.monotonic`` are allowed — timing
measurements are reported as measurements, not merged into results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import rule

#: Subpackages of ``repro`` whose modules carry the determinism contract.
CRITICAL_PACKAGES = {
    "engine",
    "cubes",
    "atpg",
    "filling",
    "orderings",
    "circuit",
    "power",
    "scan",
    "core",
}

#: Individual modules outside those packages that also carry it.
CRITICAL_MODULES = {
    ("cluster", "protocol.py"),
    ("cluster", "fault_sim.py"),
    ("cluster", "atpg.py"),
    ("cluster", "executor.py"),
}

#: ``random.<attr>`` uses that are fine: seeded/explicit instances.
ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}

#: ``np.random.<attr>`` uses that are fine: explicit generator construction.
ALLOWED_NP_RANDOM_ATTRS = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: ``time.<attr>`` reads that are wall-clock (monotonic clocks are fine).
WALL_CLOCK_TIME_ATTRS = {"time", "time_ns"}

#: ``datetime``/``date`` constructors that read the wall clock.
WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: ``uuid.<attr>`` constructors drawing entropy or host state.
ENTROPY_UUID_ATTRS = {"uuid1", "uuid4"}


def is_critical(module: ModuleInfo) -> bool:
    parts = module.repro_parts()
    if not parts:
        return False
    if parts[0] in CRITICAL_PACKAGES:
        return True
    return tuple(parts[-2:]) in CRITICAL_MODULES


def _dotted(node: ast.AST) -> str:
    """``np.random.rand`` → ``"np.random.rand"`` ('' for non-name chains)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


@rule("R1", "determinism")
def check_determinism(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag nondeterminism sources inside determinism-contract modules."""
    if not is_critical(module):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Attribute, ast.Call)):
            if isinstance(node, ast.Attribute):
                # Skip attributes that are the callee of a Call — the Call
                # node reports them; bare references still get caught.
                parent = module.parents.get(node)
                if isinstance(parent, ast.Call) and parent.func is node:
                    continue
            target = node.func if isinstance(node, ast.Call) else node
            dotted = _dotted(target)
            if not dotted:
                continue
            head, _, tail = dotted.partition(".")
            if head == "random" and tail and "." not in tail:
                if tail not in ALLOWED_RANDOM_ATTRS:
                    yield module.finding(
                        "R1",
                        node.lineno,
                        f"global-state RNG call random.{tail} in a deterministic "
                        "module; use a seeded random.Random instance",
                    )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                attr = dotted.rsplit(".", 1)[-1]
                if attr not in ALLOWED_NP_RANDOM_ATTRS:
                    yield module.finding(
                        "R1",
                        node.lineno,
                        f"global-state RNG call {dotted} in a deterministic "
                        "module; use np.random.default_rng(seed)",
                    )
            elif head == "time" and tail in WALL_CLOCK_TIME_ATTRS:
                yield module.finding(
                    "R1",
                    node.lineno,
                    f"wall-clock read {dotted} in a deterministic module; use "
                    "time.perf_counter/monotonic for timing, or keep clocks "
                    "out of result payloads",
                )
            elif tail and dotted.rsplit(".", 1)[-1] in WALL_CLOCK_DATETIME_ATTRS and (
                head in {"datetime", "date"} or ".datetime." in f".{dotted}."
            ):
                yield module.finding(
                    "R1",
                    node.lineno,
                    f"wall-clock read {dotted} in a deterministic module",
                )
            elif head == "os" and tail == "urandom":
                yield module.finding(
                    "R1",
                    node.lineno,
                    "entropy read os.urandom in a deterministic module; derive "
                    "bits from a seeded hash (see cluster.chaos) instead",
                )
            elif head == "uuid" and tail in ENTROPY_UUID_ATTRS:
                yield module.finding(
                    "R1",
                    node.lineno,
                    f"entropy-derived id {dotted} in a deterministic module; "
                    "use a content digest for stable identity",
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            iter_expr = node.iter
            if _is_set_expr(iter_expr):
                yield module.finding(
                    "R1",
                    getattr(node, "lineno", iter_expr.lineno),
                    "iteration over a set feeds ordered output and depends on "
                    "hash order; iterate sorted(...) or a list instead",
                )
