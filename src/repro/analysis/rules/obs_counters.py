"""R5 — telemetry name grammar and the counters manifest.

Counter parity across backends/transports is only checkable when both
sides emit the *same names*; a typo'd counter silently becomes a new
key and the parity suite compares ``None == None``.  So every emitted
name must be declared in :mod:`repro.obs.manifest` and parse under the
counter grammar ``(fault_sim|podem|cluster|runner|obs).<path>``.

Checked emission shapes:

* ``counter("name")`` / ``obs.counter("name", n)`` with a literal name;
* f-string counters — the literal head must sit under a declared
  dynamic prefix (e.g. ``f"podem.status.{status}"``);
* ``add_counters(..., prefix="p.")`` — the prefix must be a declared
  dynamic prefix;
* dict literals passed to ``add_counters`` — each literal key is
  checked like a ``counter(...)`` name;
* ``span("a/b")`` paths — literal or f-string head must start from a
  declared span root.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import rule
from repro.obs import manifest

#: First path segment every span must start from.
SPAN_ROOTS = ("logic_sim", "fault_sim", "atpg", "runner")


def _callee_attr(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _literal_head(node: ast.AST) -> Optional[str]:
    """The literal text of a Constant str, or the leading constant of an
    f-string; ``None`` for anything else."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _is_exact(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant)


def _check_counter_name(module: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
    head = _literal_head(node)
    if head is None:
        return
    if _is_exact(node):
        if not manifest.COUNTER_GRAMMAR.match(head):
            yield module.finding(
                "R5",
                node.lineno,
                f"counter name {head!r} violates the grammar "
                "(fault_sim|podem|cluster|runner|obs).<dotted_path>",
            )
        elif not manifest.is_declared(head):
            yield module.finding(
                "R5",
                node.lineno,
                f"counter {head!r} is not declared in repro.obs.manifest; "
                "add it to COUNTERS with a doc line",
            )
    else:
        # f-string: the constant head must sit under a declared dynamic prefix.
        if not any(head.startswith(p) for p in manifest.COUNTER_PREFIXES):
            yield module.finding(
                "R5",
                node.lineno,
                f"dynamic counter head {head!r} is not under any declared "
                "prefix; add the family to manifest.COUNTER_PREFIXES",
            )


@rule("R5", "obs-grammar")
def check_obs_names(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag telemetry emissions whose names escape the declared manifest."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_attr(node)
        if callee == "counter" and node.args:
            yield from _check_counter_name(module, node.args[0])
        elif callee == "add_counters":
            for kw in node.keywords:
                if kw.arg == "prefix":
                    prefix = _literal_head(kw.value)
                    if prefix is not None and prefix not in manifest.COUNTER_PREFIXES:
                        yield module.finding(
                            "R5",
                            kw.value.lineno,
                            f"add_counters prefix {prefix!r} is not a declared "
                            "dynamic prefix in repro.obs.manifest",
                        )
            if node.args and isinstance(node.args[0], ast.Dict):
                has_prefix = any(kw.arg == "prefix" for kw in node.keywords)
                if not has_prefix:
                    for key in node.args[0].keys:
                        if key is not None:
                            yield from _check_counter_name(module, key)
        elif callee == "span" and node.args:
            head = _literal_head(node.args[0])
            if head is None:
                continue
            if _is_exact(node.args[0]):
                if not manifest.SPAN_GRAMMAR.match(head):
                    yield module.finding(
                        "R5",
                        node.args[0].lineno,
                        f"span path {head!r} violates the grammar "
                        f"({'|'.join(SPAN_ROOTS)})/<segments>",
                    )
            else:
                root = head.split("/", 1)[0]
                if root not in SPAN_ROOTS:
                    yield module.finding(
                        "R5",
                        node.args[0].lineno,
                        f"span path starts at undeclared root {root!r}; "
                        f"declared roots: {', '.join(SPAN_ROOTS)}",
                    )
