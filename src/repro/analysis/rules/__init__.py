"""Built-in rules: importing this package registers R1–R6.

Each module calls :func:`repro.analysis.registry.rule` (or
``project_rule``) at import time; the registry keeps them in id order.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    determinism,
    envvars,
    obs_counters,
    silent_except,
    spawn,
    tailmask,
)
