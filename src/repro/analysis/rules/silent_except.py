"""R6 — no silent broad exception handlers.

A bare ``except:`` or ``except Exception:`` that swallows the error is
how distributed runs turn into silent hangs or quietly-wrong answers:
the failure evidence evaporates exactly when it is needed.  Inside
``src/repro`` every broad handler must do one of:

* **re-raise** (possibly after cleanup/annotation);
* **record the failure** through telemetry (``obs.event(...)``), so the
  spool's event log and quarantine forensics still see it;
* carry an explicit inline suppression — ``# repro: allow[R6] <why>`` —
  turning the decision to swallow into a reviewed, documented one.

Narrow handlers (``except OSError:`` etc.) are out of scope: catching a
specific expected failure is normal control flow.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import rule

#: Exception names considered "broad": they catch effectively everything.
BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name):
        return kind.id in BROAD_NAMES
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(item, ast.Name) and item.id in BROAD_NAMES
            for item in kind.elts
        )
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or records the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name == "event":
                return True
    return False


@rule("R6", "silent-except")
def check_silent_except(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag broad exception handlers that swallow the failure silently."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _handles_visibly(node):
            continue
        what = "bare except" if node.type is None else "broad except"
        yield module.finding(
            "R6",
            node.lineno,
            f"{what} swallows the failure: re-raise, record it via "
            "obs.event(...), or document the suppression with "
            "'# repro: allow[R6] <why>'",
        )
