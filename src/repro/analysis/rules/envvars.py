"""R3 — the REPRO_* environment-variable registry.

Every ``REPRO_*`` knob must be declared exactly once in
:mod:`repro.envvars` — name, strict parser, default and doc line — and
every read must go through that declaration (``envvars.X.read()``).
Scattered ``os.environ.get("REPRO_...")`` reads are how the historical
drift happened: three call sites, three different truthiness rules, and
a README that documented none of them.

Per-module checks:

* a direct ``os.environ[...]`` / ``os.environ.get(...)`` /
  ``os.getenv(...)`` read of a literal ``REPRO_*`` name outside
  ``repro/envvars.py`` is a finding, even when the name is declared —
  the declaration's parser and default are being bypassed;
* any env read of a literal ``REPRO_*`` name that is **not** declared in
  the registry is a finding everywhere.

Project check: the README's generated env-var table (between the
``envvar-table`` markers) must match :func:`repro.envvars.render_table`
exactly — regenerate with ``python -m repro.envvars --write-readme``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro import envvars as registry_module
from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import project_rule, rule


def _is_registry_module(module: ModuleInfo) -> bool:
    parts = module.repro_parts()
    return bool(parts) and parts[-1] == "envvars.py" and len(parts) == 1


def _literal_env_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _env_reads(tree: ast.Module) -> List[Tuple[int, str]]:
    """(line, name) for every literal env read via os.environ/os.getenv."""
    reads: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "environ"
                and isinstance(value.value, ast.Name)
                and value.value.id == "os"
                and isinstance(getattr(node, "ctx", None), ast.Load)
            ):
                name = _literal_env_name(node.slice)
                if name is not None:
                    reads.append((node.lineno, name))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                # os.getenv(...) and os.environ.get(...)
                if (
                    func.attr == "getenv"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                ) or (
                    func.attr == "get"
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "environ"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "os"
                ):
                    if node.args:
                        name = _literal_env_name(node.args[0])
                        if name is not None:
                            reads.append((node.lineno, name))
    return reads


@rule("R3", "envvar-registry")
def check_env_reads(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag REPRO_* env reads bypassing or missing the registry."""
    in_registry = _is_registry_module(module)
    for line, name in _env_reads(module.tree):
        if not name.startswith("REPRO_"):
            continue
        if not registry_module.is_declared(name):
            yield module.finding(
                "R3",
                line,
                f"env var {name} is not declared in repro.envvars; add a "
                "declare(...) entry with a parser, default and doc line",
            )
        elif not in_registry:
            yield module.finding(
                "R3",
                line,
                f"direct os read of {name} bypasses its repro.envvars "
                f"declaration; use envvars.{name[len('REPRO_'):]}.read()",
            )


@project_rule("R3", "envvar-registry")
def check_readme_table(ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag README env-var table drift against the registry."""
    readme = ctx.root / "README.md"
    if not readme.exists():
        return
    text = readme.read_text(encoding="utf-8")
    begin, end = registry_module.TABLE_BEGIN, registry_module.TABLE_END
    if begin not in text or end not in text:
        yield ctx.project_finding(
            "R3",
            "README.md",
            1,
            "README.md lacks the generated env-var table markers "
            f"({begin} / {end})",
        )
        return
    inner = text.split(begin, 1)[1].split(end, 1)[0].strip()
    if inner != registry_module.render_table().strip():
        line = text[: text.index(begin)].count("\n") + 1
        yield ctx.project_finding(
            "R3",
            "README.md",
            line,
            "README env-var table is stale; regenerate with "
            "python -m repro.envvars --write-readme",
        )
