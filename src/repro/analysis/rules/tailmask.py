"""R2 — tail-mask enforcement for word-table consumers.

The packed engine stores 64 patterns per ``uint64`` word, so the last
word of every table carries garbage bits whenever ``n_patterns % 64 !=
0``.  Consuming a word table without masking that tail yields phantom
detections — at exactly one pattern-count residue, which is why the
dynamic suites historically missed it.

Two tail-safe idioms exist, and every consumption site outside
``repro/engine/packed.py`` (which owns the helpers) must use one:

* **self-masked tables**: call ``evaluate_words(program, words,
  n_patterns)`` with the pattern count, so the table comes back with its
  tail already zeroed;
* **explicit masking**: functions that do their own word-level tail
  arithmetic (reference ``WORD_BITS`` while holding a word-table
  parameter) must apply ``tail_mask`` themselves.

Deleting the ``tail_mask`` application from a consumer — or dropping the
``n_patterns`` argument from an ``evaluate_words`` call — makes this rule
fire; the fixture suite demonstrates both.

The fault-parallel kernel has the same hazard on the *fault* axis: 64
faults per word means the last fault word of a run usually has unpopulated
lanes, and a detection word consumed without
:func:`~repro.engine.fault.fault_lane_mask` scatters tail-lane garbage
onto faults that do not exist.  Functions that do fault-word lane
arithmetic (reference ``FAULT_WORD_LANES`` while holding a fault-list
parameter) must therefore apply ``fault_lane_mask``; the fixture corpus
carries a firing and a quiet case for this arm too.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import rule

#: Parameter names that mark a function as consuming a packed word table.
WORD_TABLE_PARAMS = {"good", "good_table", "words", "word_table", "input_words"}

#: Parameter names that mark a function as grading a packed fault list
#: (the fault-parallel kernel's signature family).
FAULT_LIST_PARAMS = {"sites", "fault_sites", "faults", "stuck_values"}


def _is_packed_module(module: ModuleInfo) -> bool:
    parts = module.repro_parts()
    return tuple(parts[-2:]) == ("engine", "packed.py")


def _names_in(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _passes_n_patterns(call: ast.Call) -> bool:
    if len(call.args) >= 3:
        return True
    return any(kw.arg == "n_patterns" for kw in call.keywords)


@rule("R2", "tail-mask")
def check_tail_mask(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag word-table consumption that can leak tail-word garbage bits."""
    if _is_packed_module(module):
        return

    scopes = [module.tree] + [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    scope_names = {id(scope): _names_in(scope) for scope in scopes}

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _callee_name(node) == "evaluate_words":
            if _passes_n_patterns(node):
                continue
            scope = module.enclosing_function(node) or module.tree
            if "tail_mask" in scope_names[id(scope)]:
                continue
            yield module.finding(
                "R2",
                node.lineno,
                "evaluate_words called without n_patterns and no tail_mask in "
                "scope: the table's last word carries garbage bits past the "
                "pattern count",
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = {
                arg.arg
                for arg in list(node.args.args)
                + list(node.args.posonlyargs)
                + list(node.args.kwonlyargs)
            }
            names = scope_names[id(node)]
            if (
                params & WORD_TABLE_PARAMS
                and "WORD_BITS" in names
                and "tail_mask" not in names
            ):
                yield module.finding(
                    "R2",
                    node.lineno,
                    f"function {node.name} consumes a word table and does "
                    "word-level arithmetic (WORD_BITS) without applying "
                    "tail_mask: garbage bits in the last word become phantom "
                    "detections",
                )
            if (
                params & FAULT_LIST_PARAMS
                and "FAULT_WORD_LANES" in names
                and "fault_lane_mask" not in names
            ):
                yield module.finding(
                    "R2",
                    node.lineno,
                    f"function {node.name} packs faults into lane words "
                    "(FAULT_WORD_LANES) without applying fault_lane_mask: "
                    "unpopulated tail lanes of the last fault word scatter "
                    "detections onto nonexistent faults",
                )
