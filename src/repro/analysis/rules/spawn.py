"""R4 — spawn/pickle safety for cluster task handlers and pool functions.

Queue workers are separate *spawned* processes: a task handler reaches
them by name (``module:qualname`` import) and pool-submitted callables
reach them by pickle.  Both break on closures, lambdas and
locally-defined functions — and break only on spawn-start platforms
(macOS/Windows) or only under the queue transport, which is exactly the
kind of latent portability bug a static pass should catch on Linux CI.

Checks:

* values of any module-level ``*_EXECUTORS`` dict must be module-level
  function names (the task-dispatch table is an import surface);
* the callable handed to ``apply_async`` / ``map`` / ``imap`` /
  ``imap_unordered`` / ``starmap`` must be a module-level function —
  never a lambda, never a function defined inside another function.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import AnalysisContext, Finding, ModuleInfo
from repro.analysis.registry import rule

#: Pool-submission method names whose first argument crosses a pickle.
POOL_METHODS = {"apply_async", "apply", "map", "imap", "imap_unordered", "starmap"}


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names importable from the module: top-level defs, imports, classes."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _nested_function_names(module: ModuleInfo) -> Set[str]:
    """Names of functions defined inside other functions (not importable)."""
    nested: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if module.enclosing_function(node) is not None:
                nested.add(node.name)
    return nested


@rule("R4", "spawn-safety")
def check_spawn_safety(module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
    """Flag task handlers / pool callables that cannot cross a spawn."""
    top_level = _module_level_names(module.tree)
    nested = _nested_function_names(module)

    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        is_executors = any(
            isinstance(target, ast.Name) and target.id.endswith("_EXECUTORS")
            for target in node.targets
        )
        if not is_executors or not isinstance(node.value, ast.Dict):
            continue
        for value in node.value.values:
            if isinstance(value, ast.Lambda):
                yield module.finding(
                    "R4",
                    value.lineno,
                    "executor-table entry is a lambda; spawned workers import "
                    "handlers by name — use a module-level function",
                )
            elif isinstance(value, ast.Name):
                if value.id not in top_level:
                    yield module.finding(
                        "R4",
                        value.lineno,
                        f"executor-table entry {value.id!r} is not a "
                        "module-level name; spawned workers cannot import it",
                    )
            elif not isinstance(value, ast.Attribute):
                yield module.finding(
                    "R4",
                    value.lineno,
                    "executor-table entry is a computed value (closure "
                    "factory?); spawned workers import handlers by name — "
                    "use a module-level function",
                )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in POOL_METHODS):
            continue
        if not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            yield module.finding(
                "R4",
                target.lineno,
                f"lambda passed to {func.attr}; it cannot be pickled to a "
                "spawned worker — use a module-level function",
            )
        elif isinstance(target, ast.Name) and target.id in nested:
            yield module.finding(
                "R4",
                target.lineno,
                f"locally-defined function {target.id!r} passed to "
                f"{func.attr}; closures cannot be pickled to a spawned "
                "worker — hoist it to module level",
            )
