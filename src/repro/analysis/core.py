"""Core machinery for the project static analyzer.

This module owns everything rule-agnostic: parsing files into
:class:`ModuleInfo` (AST + source lines + suppression map), the
:class:`Finding` record with its stable fingerprint, inline-suppression
semantics, file discovery and the :func:`run_analysis` driver that feeds
every registered rule.

Fingerprints are content-addressed — ``blake2b(rule | relpath |
stripped source line)`` — so a baseline entry survives unrelated edits
that shift line numbers, but is invalidated when the offending line
itself changes.

Inline suppression: a comment ``# repro: allow[R2]`` (or
``allow[R2,R6]``, or ``allow[*]``) on the finding's line or the line
directly above silences the named rules at that site.  Suppressions are
counted and reported, never silently dropped.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import all_rules

#: Inline suppression comment: ``# repro: allow[R1]`` / ``allow[R1,R6]`` / ``allow[*]``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: Directory names never descended into during file discovery.
SKIP_DIRS = {"__pycache__", ".git", ".repro_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    fingerprint: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def fingerprint_of(rule_id: str, relpath: str, anchor: str) -> str:
    """Stable identity of a finding: rule + file + normalized anchor text."""
    digest = blake2b(
        f"{rule_id}|{relpath}|{anchor}".encode("utf-8", "replace"), digest_size=8
    )
    return digest.hexdigest()


@dataclass
class ModuleInfo:
    """One parsed Python file plus the metadata rules need."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str]
    allow: Dict[int, Set[str]]
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def allows(self, rule_id: str, line: int) -> bool:
        """Whether an inline comment suppresses ``rule_id`` at ``line``.

        The allow comment may sit on the line itself or in the contiguous
        comment block directly above it (multi-line justifications).
        """
        def _match(probe: int) -> bool:
            rules = self.allow.get(probe)
            return bool(rules) and ("*" in rules or rule_id in rules)

        if _match(line):
            return True
        probe = line - 1
        while probe >= 1 and self.line_text(probe).lstrip().startswith("#"):
            if _match(probe):
                return True
            probe -= 1
        return False

    def finding(self, rule_id: str, line: int, message: str) -> Finding:
        anchor = self.line_text(line).strip()
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=line,
            message=message,
            fingerprint=fingerprint_of(rule_id, self.relpath, anchor),
        )

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the AST (built lazily, cached)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/async-function containing ``node``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def repro_parts(self) -> Tuple[str, ...]:
        """Path components below the ``repro`` package ('' tuple if outside).

        Fixture trees mirror the package layout (``.../repro/engine/x.py``),
        so path-scoped rules apply identically to real and fixture modules.
        """
        parts = Path(self.relpath).parts
        if "repro" not in parts:
            return ()
        return parts[parts.index("repro") + 1 :]


@dataclass
class AnalysisContext:
    """Run-wide state handed to every rule check."""

    root: Path
    paths: Tuple[Path, ...] = ()

    def project_finding(self, rule_id: str, relpath: str, line: int, message: str) -> Finding:
        return Finding(
            rule=rule_id,
            path=relpath,
            line=line,
            message=message,
            fingerprint=fingerprint_of(rule_id, relpath, message),
        )


def _suppression_map(lines: Sequence[str]) -> Dict[int, Set[str]]:
    allow: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {token.strip() for token in match.group(1).split(",") if token.strip()}
        if rules:
            allow[number] = rules
    return allow


def load_module(path: Path, root: Path) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    """Parse one file; a syntax error becomes a ``parse`` finding, not a crash."""
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = path.read_text(encoding="utf-8", errors="replace")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        finding = Finding(
            rule="parse",
            path=relpath,
            line=int(err.lineno or 1),
            message=f"file does not parse: {err.msg}",
            fingerprint=fingerprint_of("parse", relpath, err.msg or ""),
        )
        return None, finding
    lines = source.splitlines()
    return (
        ModuleInfo(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=lines,
            allow=_suppression_map(lines),
        ),
        None,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths`` (dirs recursed, sorted, deduped)."""
    seen: Set[Path] = set()
    for base in paths:
        if base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        elif base.suffix == ".py":
            candidates = [base]
        else:
            continue
        for candidate in candidates:
            if any(part in SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "files_checked": self.files_checked,
        }


def run_analysis(paths: Sequence[Path], root: Path) -> AnalysisReport:
    """Run every registered rule over ``paths``; findings sorted by location.

    Importing ``repro.analysis.rules`` here (not at module import) keeps the
    core importable without the rule set, and lets tests register ad-hoc
    rules before a run.
    """
    import repro.analysis.rules  # noqa: F401  (registers the built-in rules)

    ctx = AnalysisContext(root=root, paths=tuple(paths))
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    suppressed: List[Finding] = []

    for path in iter_python_files(paths):
        module, parse_finding = load_module(path, root)
        if parse_finding is not None:
            findings.append(parse_finding)
        if module is not None:
            modules.append(module)

    for entry in all_rules():
        for check in entry.module_checks:
            for module in modules:
                for finding in check(module, ctx):
                    if module.allows(finding.rule, finding.line):
                        suppressed.append(finding)
                    else:
                        findings.append(finding)
        for check in entry.project_checks:
            findings.extend(check(ctx))

    order = lambda f: (f.path, f.line, f.rule)  # noqa: E731
    return AnalysisReport(
        findings=sorted(findings, key=order),
        suppressed=sorted(suppressed, key=order),
        files_checked=len(modules),
    )
