"""CLI entry point: ``python -m repro.analysis [options] [paths...]``.

Exit codes: ``0`` clean (or everything suppressed/baselined), ``1``
unsuppressed findings, ``2`` usage errors (missing paths, bad baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import run_analysis


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analyzer (rules R1-R6).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON; findings with listed fingerprints do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="project root for relative paths and the README check (default: cwd)",
    )
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    paths = []
    for raw in args.paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            print(f"error: path does not exist: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    report = run_analysis(paths, root)

    if args.write_baseline:
        write_baseline(Path(args.baseline), report.findings)
        print(
            f"wrote baseline with {len(report.findings)} finding(s) to {args.baseline}"
        )
        return 0

    accepted = set()
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        try:
            accepted = load_baseline(baseline_path)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2

    failing = [f for f in report.findings if f.fingerprint not in accepted]
    baselined = [f for f in report.findings if f.fingerprint in accepted]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in failing],
                    "baselined": [f.as_dict() for f in baselined],
                    "suppressed": [f.as_dict() for f in report.suppressed],
                    "files_checked": report.files_checked,
                },
                indent=2,
            )
        )
    else:
        for finding in failing:
            print(finding.render())
        summary = (
            f"{report.files_checked} file(s) checked: {len(failing)} finding(s), "
            f"{len(baselined)} baselined, {len(report.suppressed)} suppressed inline"
        )
        print(summary)

    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
