"""ITC'99 benchmark profiles (the paper's Table I).

The original ITC'99 RTL and the commercial synthesis/ATPG flow are not
available offline, so the reproduction synthesises circuits and cube sets
whose headline statistics match the published profile: number of test pins
(primary inputs + flip-flops), gate count, and the average fraction of
don't-care bits in the ATPG cubes.

Each profile also carries reproduction-control knobs: how many patterns the
stand-in cube set should contain and whether the circuit is small enough to
run the full PODEM flow by default.  The split between primary inputs and
flip-flops is not given in the paper; a 30/70 split (common for the ITC'99
designs, which are register-dominated) is used and recorded here so it is an
explicit, documented assumption rather than a hidden one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BenchmarkProfile:
    """Size and cube statistics of one ITC'99 benchmark (paper Table I).

    Attributes:
        name: benchmark name (``b01`` ... ``b22``).
        test_pins: primary inputs + flip-flops (column 2 of Table I).
        gates: combinational gate count (column 3 of Table I).
        x_percent: average percentage of X bits in the ATPG cubes (column 4).
        n_patterns: number of patterns the stand-in cube set uses.  The paper
            does not report pattern counts; these values grow with circuit
            size the way ATPG pattern counts do and keep the experiment
            runtimes reasonable.
        full_flow_default: whether the benchmark runs the PODEM + fault
            simulation flow by default (small/medium circuits) or falls back
            to the calibrated synthetic cube generator (largest circuits).
    """

    name: str
    test_pins: int
    gates: int
    x_percent: float
    n_patterns: int
    full_flow_default: bool

    @property
    def primary_inputs(self) -> int:
        """Assumed number of primary inputs (30 % of the test pins, >= 1)."""
        return max(1, round(0.3 * self.test_pins))

    @property
    def flip_flops(self) -> int:
        """Assumed number of flip-flops (the remaining test pins)."""
        return max(0, self.test_pins - self.primary_inputs)

    @property
    def x_fraction(self) -> float:
        """X density as a fraction (Table I reports a percentage)."""
        return self.x_percent / 100.0


#: Table I of the paper, one entry per benchmark circuit.
_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        BenchmarkProfile("b01", 5, 57, 7.1, 16, True),
        BenchmarkProfile("b02", 4, 31, 5.0, 12, True),
        BenchmarkProfile("b03", 29, 103, 70.4, 24, True),
        BenchmarkProfile("b04", 77, 615, 64.4, 40, True),
        BenchmarkProfile("b05", 35, 608, 36.8, 40, True),
        BenchmarkProfile("b06", 5, 60, 12.5, 16, True),
        BenchmarkProfile("b07", 50, 431, 58.6, 36, True),
        BenchmarkProfile("b08", 30, 196, 60.4, 28, True),
        BenchmarkProfile("b09", 29, 160, 58.0, 28, True),
        BenchmarkProfile("b10", 28, 217, 58.7, 28, True),
        BenchmarkProfile("b11", 38, 574, 64.1, 36, True),
        BenchmarkProfile("b12", 126, 1600, 76.9, 64, True),
        BenchmarkProfile("b13", 53, 596, 65.4, 40, True),
        BenchmarkProfile("b14", 275, 5400, 77.9, 96, False),
        BenchmarkProfile("b15", 485, 8700, 87.8, 128, False),
        BenchmarkProfile("b17", 1452, 27990, 89.9, 192, False),
        BenchmarkProfile("b18", 3357, 75800, 86.9, 256, False),
        BenchmarkProfile("b19", 6666, 146500, 89.8, 320, False),
        BenchmarkProfile("b20", 522, 9400, 75.3, 128, False),
        BenchmarkProfile("b21", 522, 9400, 73.2, 128, False),
        BenchmarkProfile("b22", 767, 13400, 74.1, 160, False),
    ]
}
# Note: b09 is absent from Table I but present in Tables II-VI; its size and
# X density are interpolated from the published ITC'99 statistics.


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (case insensitive).

    Raises:
        KeyError: for unknown benchmarks; the message lists the known ones.
    """
    key = name.strip().lower()
    if key not in _PROFILES:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(_PROFILES)}")
    return _PROFILES[key]


def all_profiles() -> List[BenchmarkProfile]:
    """Every profile, ordered by circuit size (test pins, then gates)."""
    return sorted(_PROFILES.values(), key=lambda p: (p.test_pins, p.gates))


def default_benchmark_names(include_large: bool = False) -> List[str]:
    """Benchmarks the experiment harness runs by default.

    Args:
        include_large: include the largest profiles (b14-b22), which use the
            calibrated synthetic cube path and scaled circuits; enabled by the
            ``REPRO_FULL_SCALE`` environment variable in the harness.
    """
    names = [p.name for p in all_profiles() if p.full_flow_default]
    if include_large:
        names += [p.name for p in all_profiles() if not p.full_flow_default]
    return names
