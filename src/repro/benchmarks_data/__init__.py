"""Benchmark profiles and the paper's reported numbers.

``profiles`` captures Table I of the paper (circuit sizes and cube X
densities) and is what the workload builder uses to synthesise ITC'99-sized
stand-in circuits.  ``paper_results`` stores the numbers reported in
Tables II–VI so the experiment harness can print paper-vs-measured
comparisons and EXPERIMENTS.md can be regenerated from code.
"""

from repro.benchmarks_data.paper_results import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.benchmarks_data.profiles import (
    BenchmarkProfile,
    all_profiles,
    default_benchmark_names,
    get_profile,
)

__all__ = [
    "BenchmarkProfile",
    "get_profile",
    "all_profiles",
    "default_benchmark_names",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
]
