"""The numbers published in the paper's evaluation tables.

These values are transcribed from Tables II–VI of the DATE 2015 paper and are
used only for reporting: the experiment harness prints the paper's value next
to the reproduced value so the reader can judge whether the *shape* of the
result (ranking, improvement factors, size trend) is reproduced.  They are
never used as inputs to any algorithm.

Layout conventions
------------------
* ``PAPER_TABLE2`` / ``PAPER_TABLE3`` / ``PAPER_TABLE4`` — peak input toggles
  per benchmark for the Tool, X-Stat and I-Ordering orderings respectively;
  one dict per benchmark keyed by filler name.
* ``PAPER_TABLE5`` — peak input toggles of the best existing technique per
  family (Tool / ISA / Adj-fill / X-Stat) and of the proposed
  I-Ordering + DP-fill combination.
* ``PAPER_TABLE6`` — peak circuit power in microwatts, same columns as
  Table V.
"""

from __future__ import annotations

from typing import Dict, List

FILL_COLUMNS: List[str] = ["MT-fill", "R-fill", "0-fill", "1-fill", "B-fill", "DP-fill"]
TECHNIQUE_COLUMNS: List[str] = ["Tool", "ISA", "Adj-fill", "XStat", "Proposed"]


def _table_rows(raw: Dict[str, List[float]], columns: List[str]) -> Dict[str, Dict[str, float]]:
    return {name: dict(zip(columns, values)) for name, values in raw.items()}


#: Table II — peak input toggles, tool ordering, per X-filling method.
PAPER_TABLE2: Dict[str, Dict[str, float]] = _table_rows(
    {
        "b01": [4, 4, 4, 4, 4, 4],
        "b02": [4, 4, 4, 4, 4, 4],
        "b03": [15, 21, 17, 16, 14, 14],
        "b04": [41, 50, 47, 45, 39, 39],
        "b05": [20, 23, 19, 20, 17, 17],
        "b06": [4, 4, 5, 4, 4, 4],
        "b07": [31, 30, 34, 27, 23, 23],
        "b08": [20, 20, 20, 18, 14, 12],
        "b09": [18, 20, 22, 18, 18, 18],
        "b10": [12, 19, 17, 15, 10, 10],
        "b11": [22, 27, 29, 21, 20, 20],
        "b12": [63, 76, 62, 89, 59, 58],
        "b13": [31, 34, 38, 30, 30, 29],
        "b14": [181, 180, 194, 159, 157, 156],
        "b15": [305, 334, 344, 298, 292, 282],
        "b17": [916, 923, 943, 880, 871, 841],
        "b18": [2134, 2167, 2251, 2114, 2066, 2009],
        "b19": [3926, 4099, 4201, 3955, 3819, 3753],
        "b20": [309, 314, 315, 305, 302, 299],
        "b21": [317, 307, 315, 305, 276, 260],
        "b22": [489, 494, 507, 471, 472, 466],
    },
    FILL_COLUMNS,
)

#: Table III — peak input toggles, X-Stat ordering, per X-filling method.
PAPER_TABLE3: Dict[str, Dict[str, float]] = _table_rows(
    {
        "b01": [3, 4, 4, 3, 3, 3],
        "b02": [4, 4, 4, 4, 4, 4],
        "b03": [15, 19, 18, 15, 8, 7],
        "b04": [45, 52, 47, 43, 25, 24],
        "b05": [21, 24, 21, 23, 15, 14],
        "b06": [5, 4, 5, 5, 5, 4],
        "b07": [27, 33, 38, 25, 15, 14],
        "b08": [16, 20, 18, 15, 8, 7],
        "b09": [20, 19, 17, 16, 14, 14],
        "b10": [14, 20, 16, 14, 10, 7],
        "b11": [18, 26, 22, 20, 10, 9],
        "b12": [60, 76, 99, 68, 31, 31],
        "b13": [37, 32, 28, 23, 17, 17],
        "b14": [181, 164, 208, 152, 79, 79],
        "b15": [308, 277, 314, 198, 144, 144],
        "b17": [912, 774, 953, 680, 421, 421],
        "b18": [2130, 1752, 2200, 1569, 1011, 1008],
        "b19": [3926, 3457, 4340, 3168, 1877, 1877],
        "b20": [314, 291, 352, 297, 152, 152],
        "b21": [288, 290, 346, 237, 130, 130],
        "b22": [483, 419, 475, 440, 237, 234],
    },
    FILL_COLUMNS,
)

#: Table IV — peak input toggles, I-Ordering, per X-filling method.
PAPER_TABLE4: Dict[str, Dict[str, float]] = _table_rows(
    {
        "b01": [3, 4, 4, 3, 3, 3],
        "b02": [3, 3, 3, 3, 3, 3],
        "b03": [12, 19, 15, 15, 8, 6],
        "b04": [41, 45, 43, 39, 23, 15],
        "b05": [20, 22, 21, 23, 15, 14],
        "b06": [4, 4, 4, 4, 4, 4],
        "b07": [24, 31, 38, 23, 15, 11],
        "b08": [16, 18, 16, 14, 8, 6],
        "b09": [14, 18, 16, 16, 11, 11],
        "b10": [10, 18, 14, 13, 9, 7],
        "b11": [15, 25, 22, 18, 10, 9],
        "b12": [59, 72, 99, 65, 30, 15],
        "b13": [28, 31, 28, 23, 15, 10],
        "b14": [168, 158, 208, 148, 77, 40],
        "b15": [296, 267, 314, 193, 141, 33],
        "b17": [882, 770, 953, 676, 419, 85],
        "b18": [2030, 1741, 2200, 1550, 980, 232],
        "b19": [3862, 3436, 4340, 3167, 1871, 364],
        "b20": [301, 285, 352, 284, 143, 65],
        "b21": [280, 286, 333, 237, 129, 67],
        "b22": [451, 409, 475, 425, 210, 91],
    },
    FILL_COLUMNS,
)

#: Table V — peak input toggles of existing techniques vs I-Ordering + DP-fill.
PAPER_TABLE5: Dict[str, Dict[str, float]] = _table_rows(
    {
        "b01": [4, 2, 4, 3, 3],
        "b02": [4, 1, 3, 4, 3],
        "b03": [14, 8, 6, 8, 6],
        "b04": [39, 31, 29, 25, 15],
        "b05": [17, 12, 19, 15, 14],
        "b06": [4, 2, 4, 4, 4],
        "b07": [23, 18, 17, 15, 11],
        "b08": [14, 10, 9, 8, 6],
        "b09": [18, 11, 17, 14, 11],
        "b10": [10, 9, 9, 10, 7],
        "b11": [20, 12, 18, 10, 9],
        "b12": [59, 46, 77, 31, 15],
        "b13": [30, 20, 26, 17, 10],
        "b14": [157, 89, 69, 79, 40],
        "b15": [292, 172, 149, 144, 33],
        "b17": [871, 573, 438, 421, 85],
        "b18": [2066, 1384, 1065, 1011, 232],
        "b19": [3819, 2609, 2100, 1877, 364],
        "b20": [302, 214, 198, 152, 65],
        "b21": [276, 181, 182, 130, 67],
        "b22": [471, 324, 232, 237, 91],
    },
    TECHNIQUE_COLUMNS,
)

#: Table VI — peak circuit power in microwatts, same columns as Table V.
PAPER_TABLE6: Dict[str, Dict[str, float]] = _table_rows(
    {
        "b01": [3.8, 2.3, 3.3, 3.1, 3.1],
        "b02": [2.4, 1.5, 2.8, 2.6, 2.6],
        "b03": [5.6, 4.0, 4.6, 3.9, 4.2],
        "b04": [17.2, 17.1, 15.8, 16.9, 14.8],
        "b05": [15.6, 13.6, 16.4, 14.6, 14.9],
        "b06": [4.4, 2.6, 4.4, 4.3, 4.4],
        "b07": [15.7, 14.8, 13.1, 14.6, 13.3],
        "b08": [7.8, 6.8, 8.1, 7.7, 6.3],
        "b09": [9.8, 8.4, 10.7, 8.9, 7.4],
        "b10": [9.3, 8.8, 9.0, 8.7, 8.2],
        "b11": [16.4, 15.4, 15.2, 14.6, 13.9],
        "b12": [56.5, 49.4, 58.4, 39.3, 36.4],
        "b13": [18.0, 13.7, 15.1, 14.7, 10.9],
        "b14": [99.3, 101.7, 99.0, 86.5, 85.4],
        "b15": [197.1, 171.0, 155.3, 140.4, 122.0],
        "b17": [1085.5, 847.1, 665.5, 641.7, 431.6],
        "b18": [3350.7, 2405.3, 2012.2, 1761.0, 1192.0],
        "b19": [7621.6, 6708.3, 5885.0, 4135.0, 2699.4],
        "b20": [252.8, 243.0, 214.8, 202.6, 195.3],
        "b21": [248.4, 226.1, 223.8, 183.2, 166.4],
        "b22": [395.6, 372.8, 328.9, 304.8, 277.1],
    },
    TECHNIQUE_COLUMNS,
)


def improvement_percent(baseline: float, proposed: float) -> float:
    """Percentage improvement of ``proposed`` over ``baseline`` (paper convention)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - proposed) / baseline
