"""Reference circuits: hand-written designs and ITC'99-profile stand-ins.

The hand-written circuits serve three purposes: they make unit tests
readable (known truth tables, known fault behaviour), they give the examples
something concrete to run, and they document the netlist API by example.
``itc99_like`` builds a synthetic circuit whose size matches a Table I
profile, optionally scaled down so the pure-Python flow stays fast.
"""

from __future__ import annotations

from typing import Optional

from repro.benchmarks_data.profiles import get_profile
from repro.circuit.gates import GateType
from repro.circuit.generator import generate_circuit, scaled_spec
from repro.circuit.netlist import Circuit


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.

    Small enough to reason about by hand, large enough to have reconvergent
    fan-out — the classic smoke test for ATPG implementations.
    """
    circuit = Circuit(name="c17")
    for net in ("G1", "G2", "G3", "G6", "G7"):
        circuit.add_input(net)
    circuit.add_gate("G10", GateType.NAND, ["G1", "G3"])
    circuit.add_gate("G11", GateType.NAND, ["G3", "G6"])
    circuit.add_gate("G16", GateType.NAND, ["G2", "G11"])
    circuit.add_gate("G19", GateType.NAND, ["G11", "G7"])
    circuit.add_gate("G22", GateType.NAND, ["G10", "G16"])
    circuit.add_gate("G23", GateType.NAND, ["G16", "G19"])
    circuit.add_output("G22")
    circuit.add_output("G23")
    circuit.validate()
    return circuit


def b01_like_fsm() -> Circuit:
    """A small Moore FSM in the spirit of ITC'99 b01 (2 inputs, 5 flip-flops).

    The state registers compare two serial input streams; the design mixes
    AND/OR/XOR logic with state feedback, giving the scan flow a realistic
    miniature target.
    """
    circuit = Circuit(name="b01_like")
    circuit.add_input("line1")
    circuit.add_input("line2")

    # Current state (flip-flop outputs are implicit sources s0..s2, outf, overflw).
    circuit.add_gate("eq", GateType.XNOR, ["line1", "line2"])
    circuit.add_gate("diff", GateType.XOR, ["line1", "line2"])
    circuit.add_gate("n_s0", GateType.XOR, ["s0", "diff"])
    circuit.add_gate("carry", GateType.AND, ["s0", "diff"])
    circuit.add_gate("n_s1", GateType.XOR, ["s1", "carry"])
    circuit.add_gate("carry2", GateType.AND, ["s1", "carry"])
    circuit.add_gate("n_s2", GateType.OR, ["s2", "carry2"])
    circuit.add_gate("outf_next", GateType.AND, ["eq", "n_s0"])
    circuit.add_gate("ovf_next", GateType.OR, ["carry2", "overflw"])

    circuit.add_gate("s0", GateType.DFF, ["n_s0"])
    circuit.add_gate("s1", GateType.DFF, ["n_s1"])
    circuit.add_gate("s2", GateType.DFF, ["n_s2"])
    circuit.add_gate("outf", GateType.DFF, ["outf_next"])
    circuit.add_gate("overflw", GateType.DFF, ["ovf_next"])

    circuit.add_output("outf")
    circuit.add_output("overflw")
    circuit.validate()
    return circuit


def ripple_counter(width: int = 4) -> Circuit:
    """An n-bit synchronous counter with enable: XOR/AND carry chain into DFFs."""
    if width < 1:
        raise ValueError("width must be at least 1")
    circuit = Circuit(name=f"counter{width}")
    circuit.add_input("enable")
    carry = "enable"
    for bit in range(width):
        q = f"q{bit}"
        circuit.add_gate(f"sum{bit}", GateType.XOR, [q, carry])
        if bit < width - 1:
            circuit.add_gate(f"carry{bit}", GateType.AND, [q, carry])
            carry = f"carry{bit}"
        circuit.add_gate(q, GateType.DFF, [f"sum{bit}"])
    circuit.add_output(f"q{width - 1}")
    circuit.validate()
    return circuit


def toy_pipeline(stages: int = 3, width: int = 4) -> Circuit:
    """A small registered datapath: ``stages`` register stages of ``width`` bits
    with a layer of mixing logic between consecutive stages."""
    if stages < 1 or width < 2:
        raise ValueError("need at least one stage and two bits")
    circuit = Circuit(name=f"pipe{stages}x{width}")
    for bit in range(width):
        circuit.add_input(f"in{bit}")
    previous = [f"in{bit}" for bit in range(width)]
    for stage in range(stages):
        mixed = []
        for bit in range(width):
            left = previous[bit]
            right = previous[(bit + 1) % width]
            name = f"mix_{stage}_{bit}"
            gate_type = GateType.XOR if bit % 2 == 0 else GateType.NAND
            circuit.add_gate(name, gate_type, [left, right])
            mixed.append(name)
        registered = []
        for bit, net in enumerate(mixed):
            reg = f"r_{stage}_{bit}"
            circuit.add_gate(reg, GateType.DFF, [net])
            registered.append(reg)
        previous = registered
    for bit, net in enumerate(previous):
        circuit.add_output(net)
    circuit.validate()
    return circuit


def itc99_like(name: str, scale: Optional[float] = None, seed: int = 0) -> Circuit:
    """Build a synthetic circuit matching an ITC'99 profile from Table I.

    Args:
        name: benchmark name (``b01`` ... ``b22``).
        scale: optional down-scaling factor applied to the published size;
            defaults to 1.0 for the small benchmarks and is typically set by
            the workload builder for the large ones.
        seed: generator seed (defaults to a stable per-benchmark value).
    """
    profile = get_profile(name)
    factor = 1.0 if scale is None else scale
    # Stable per-benchmark default seed (hash() is randomised per process).
    default_seed = sum(ord(c) * (i + 1) for i, c in enumerate(profile.name))
    spec = scaled_spec(
        name=profile.name if factor == 1.0 else f"{profile.name}_s{factor:g}",
        n_primary_inputs=profile.primary_inputs,
        n_flip_flops=profile.flip_flops,
        n_gates=profile.gates,
        scale=factor,
        seed=seed or default_seed,
    )
    return generate_circuit(spec)
