"""Synthetic sequential circuit generator.

The experiments need circuits whose size matches the ITC'99 profiles
(Table I) without access to the original RTL or a synthesis tool.  The
generator builds random — but structurally realistic — gate-level netlists:

* gates are created in a topological stream, each drawing its fan-in from a
  locality window of recently created nets (plus occasional long-range
  connections), which yields the narrow/deep cone structure real synthesised
  logic has instead of a flat random DAG;
* a configurable fraction of flip-flops closes state feedback loops (their
  D inputs come from late gates, their Q outputs feed early gates), matching
  the register-dominated ITC'99 designs;
* every net is consumed by at least one reader, so the fault universe has no
  trivially untestable floating logic, and leftover unread nets become
  primary outputs.

Generation is fully deterministic for a given :class:`CircuitSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: Relative frequencies of gate types in generated logic (NAND/NOR-heavy,
#: like standard-cell mapped netlists).
_GATE_MIX = [
    (GateType.NAND, 0.28),
    (GateType.NOR, 0.18),
    (GateType.AND, 0.16),
    (GateType.OR, 0.14),
    (GateType.NOT, 0.12),
    (GateType.XOR, 0.07),
    (GateType.BUF, 0.03),
    (GateType.XNOR, 0.02),
]


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of a synthetic circuit.

    Attributes:
        name: circuit name.
        n_primary_inputs: number of primary inputs.
        n_flip_flops: number of D flip-flops (scan cells).
        n_gates: number of combinational gates.
        n_primary_outputs: number of primary outputs (defaults to roughly one
            per eight gates, at least one).
        locality: probability that a gate input is drawn from the recent-net
            window rather than uniformly from all earlier nets.
        window: size of the recent-net locality window.
        seed: RNG seed.
    """

    name: str
    n_primary_inputs: int
    n_flip_flops: int
    n_gates: int
    n_primary_outputs: int = 0
    locality: float = 0.75
    window: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_primary_inputs < 1:
            raise ValueError("at least one primary input is required")
        if self.n_flip_flops < 0 or self.n_gates < 1:
            raise ValueError("flip-flop count must be >= 0 and gate count >= 1")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")


def _sample_gate_type(rng: np.random.Generator) -> GateType:
    names = [t for t, _ in _GATE_MIX]
    weights = np.array([w for _, w in _GATE_MIX])
    return names[int(rng.choice(len(names), p=weights / weights.sum()))]


def generate_circuit(spec: CircuitSpec) -> Circuit:
    """Generate a validated synthetic circuit matching ``spec``."""
    rng = np.random.default_rng(spec.seed)
    circuit = Circuit(name=spec.name)

    pi_names = [f"pi{i}" for i in range(spec.n_primary_inputs)]
    ff_names = [f"ff{i}" for i in range(spec.n_flip_flops)]
    for net in pi_names:
        circuit.add_input(net)

    # Flip-flop outputs act as sources; their D inputs are wired at the end.
    # ``unused`` is kept as an insertion-ordered dict so generation stays
    # deterministic across processes (set iteration order would depend on the
    # randomised string hash seed).
    sources: List[str] = pi_names + ff_names
    available: List[str] = list(sources)
    # Nets from completed layers that nothing reads yet.  Freshly created
    # gates only become eligible once their layer closes, so the forced
    # consumption below cannot create gate-to-next-gate chains.
    unused: dict = dict.fromkeys(sources)
    fresh_unused: dict = {}

    # Arrange gates in layers so the combinational depth grows like the depth
    # of synthesised logic (tens of levels) instead of degenerating into one
    # long chain.  Layer L draws most of its fan-in from layer L-1.
    depth_target = max(5, min(60, round(3.2 * np.log2(max(spec.n_gates, 2)))))
    layer_width = max(1, -(-spec.n_gates // depth_target))  # ceil division
    previous_layer: List[str] = list(sources)
    current_layer: List[str] = []

    gate_names: List[str] = []
    for index in range(spec.n_gates):
        gate_type = _sample_gate_type(rng)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin = 1
        else:
            fanin = int(rng.integers(2, 5)) if rng.random() < 0.25 else 2
        inputs: List[str] = []
        # First, consume completed-layer nets nobody reads yet so nothing is
        # left floating.
        while unused and len(inputs) < fanin:
            candidate = next(iter(unused))
            del unused[candidate]
            if candidate not in inputs:
                inputs.append(candidate)
        attempts = 0
        while len(inputs) < fanin and attempts < 16:
            attempts += 1
            if rng.random() < spec.locality and previous_layer:
                pool = previous_layer
            else:
                pool = available
            candidate = pool[int(rng.integers(0, len(pool)))]
            if candidate not in inputs:
                inputs.append(candidate)
        if len(inputs) == 1 and gate_type not in (GateType.NOT, GateType.BUF):
            # Not enough distinct driver nets yet; degrade to an inverter.
            gate_type = GateType.NOT
        name = f"g{index}"
        circuit.add_gate(name, gate_type, inputs)
        for net in inputs:
            unused.pop(net, None)
            fresh_unused.pop(net, None)
        available.append(name)
        fresh_unused[name] = None
        gate_names.append(name)
        current_layer.append(name)
        if len(current_layer) >= layer_width:
            previous_layer = current_layer
            current_layer = []
            unused.update(fresh_unused)
            fresh_unused = {}
    unused.update(fresh_unused)

    # Wire flip-flop D inputs from late gates so state feedback spans the logic.
    if spec.n_flip_flops:
        tail = gate_names[-max(spec.n_flip_flops * 2, 8):]
        for ff_name in ff_names:
            source = tail[int(rng.integers(0, len(tail)))] if tail else pi_names[0]
            circuit.add_gate(ff_name, GateType.DFF, [source])
            unused.pop(source, None)

    # Primary outputs: requested count plus anything still unread.
    n_outputs = spec.n_primary_outputs or max(1, spec.n_gates // 8)
    candidates = [g for g in reversed(gate_names) if g not in circuit.primary_outputs]
    chosen: List[str] = []
    for net in candidates:
        if len(chosen) >= n_outputs:
            break
        chosen.append(net)
    leftover = [net for net in unused if net in circuit.gates and net not in chosen]
    for net in chosen + sorted(leftover):
        if net not in circuit.primary_outputs:
            circuit.add_output(net)

    circuit.validate()
    return circuit


def scaled_spec(
    name: str,
    n_primary_inputs: int,
    n_flip_flops: int,
    n_gates: int,
    scale: float = 1.0,
    seed: int = 0,
) -> CircuitSpec:
    """Build a spec scaled down by ``scale`` (used for the largest ITC'99 profiles).

    Scaling keeps at least one primary input, one gate and — when the
    original had any — one flip-flop, so the full-scan machinery still has
    something to exercise even at tiny scales.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return CircuitSpec(
        name=name,
        n_primary_inputs=max(1, round(n_primary_inputs * scale)),
        n_flip_flops=max(1 if n_flip_flops else 0, round(n_flip_flops * scale)),
        n_gates=max(1, round(n_gates * scale)),
        seed=seed,
    )
