"""Netlist container: gates, nets and the full-scan combinational view.

A :class:`Circuit` is a named collection of gates.  Every net is identified
by the name of its driver (a primary input or a gate output), which matches
the ``.bench`` convention.  Sequential elements are D flip-flops; in the
full-scan methodology the paper assumes, every flip-flop is a scan cell, so
the *combinational view* of the circuit treats flip-flop outputs as
pseudo-primary-inputs and flip-flop data inputs as pseudo-primary-outputs.
Test cubes are defined over ``primary_inputs + flip-flop outputs`` in that
order, which is the pin ordering used throughout the experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.gates import GateType


@dataclass(frozen=True)
class Gate:
    """A single gate instance.

    Attributes:
        output: name of the net this gate drives (also the gate's identifier).
        gate_type: the logic primitive.
        inputs: names of the driven-by nets, in pin order.
    """

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.gate_type.arity_ok(len(self.inputs)):
            raise ValueError(
                f"gate {self.output!r}: {self.gate_type.name} cannot take {len(self.inputs)} inputs"
            )


class CircuitError(ValueError):
    """Raised for structurally invalid circuits (undriven nets, cycles, ...)."""


class Circuit:
    """A gate-level netlist with optional D flip-flops.

    Args:
        name: circuit name (used in reports and ``.bench`` output).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._order_cache: Optional[List[str]] = None
        self._structure_token: Optional[object] = None
        self._structure_digest: Optional[str] = None

    # -- construction -----------------------------------------------------
    def add_input(self, name: str) -> None:
        """Declare a primary input net."""
        if name in self._inputs:
            raise CircuitError(f"duplicate primary input {name!r}")
        if name in self._gates:
            raise CircuitError(f"net {name!r} already driven by a gate")
        self._inputs.append(name)
        self._order_cache = None
        self._structure_token = None
        self._structure_digest = None

    def add_output(self, name: str) -> None:
        """Declare a primary output net (must be driven by a PI or a gate)."""
        if name in self._outputs:
            raise CircuitError(f"duplicate primary output {name!r}")
        self._outputs.append(name)
        self._order_cache = None
        self._structure_token = None
        self._structure_digest = None

    def add_gate(self, output: str, gate_type: GateType, inputs: Sequence[str]) -> Gate:
        """Add a gate driving net ``output``; returns the created gate."""
        if output in self._gates:
            raise CircuitError(f"net {output!r} already driven by a gate")
        if output in self._inputs:
            raise CircuitError(f"net {output!r} is a primary input")
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs))
        self._gates[output] = gate
        self._order_cache = None
        self._structure_token = None
        self._structure_digest = None
        return gate

    # -- basic views ---------------------------------------------------------
    @property
    def primary_inputs(self) -> List[str]:
        """Primary input net names, in declaration order."""
        return list(self._inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Primary output net names, in declaration order."""
        return list(self._outputs)

    @property
    def gates(self) -> Dict[str, Gate]:
        """Mapping from driven net name to gate (copy; safe to iterate)."""
        return dict(self._gates)

    @property
    def flip_flops(self) -> List[Gate]:
        """All DFF gates, in insertion order."""
        return [g for g in self._gates.values() if g.gate_type.is_sequential]

    @property
    def combinational_gates(self) -> List[Gate]:
        """All non-DFF, non-source gates."""
        return [
            g
            for g in self._gates.values()
            if not g.gate_type.is_sequential and not g.gate_type.is_source
        ]

    @property
    def n_gates(self) -> int:
        """Number of combinational gates (the paper's "# Gates" metric)."""
        return len(self.combinational_gates)

    @property
    def n_flip_flops(self) -> int:
        """Number of D flip-flops (scan cells in the full-scan view)."""
        return len(self.flip_flops)

    def get_gate(self, net: str) -> Gate:
        """Return the gate driving ``net``.

        Raises:
            KeyError: if the net is a primary input or unknown.
        """
        return self._gates[net]

    def is_primary_input(self, net: str) -> bool:
        """``True`` if ``net`` is a declared primary input."""
        return net in self._inputs

    def nets(self) -> List[str]:
        """Every net name: primary inputs first, then gate outputs."""
        return self._inputs + list(self._gates.keys())

    # -- full-scan combinational view ---------------------------------------------
    @property
    def combinational_inputs(self) -> List[str]:
        """Pins a test cube assigns: primary inputs, then flip-flop outputs."""
        return self._inputs + [ff.output for ff in self.flip_flops]

    @property
    def combinational_outputs(self) -> List[str]:
        """Observable nets: primary outputs, then flip-flop data inputs."""
        return self._outputs + [ff.inputs[0] for ff in self.flip_flops]

    @property
    def n_test_pins(self) -> int:
        """Length of a test cube for this circuit (PIs + flip-flops)."""
        return len(self.combinational_inputs)

    # -- structural analysis ------------------------------------------------------
    def validate(self) -> None:
        """Check that every referenced net is driven and the logic is acyclic.

        Raises:
            CircuitError: describing the first problem found.
        """
        driven = set(self._inputs) | set(self._gates.keys())
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise CircuitError(f"gate {gate.output!r} reads undriven net {net!r}")
        for net in self._outputs:
            if net not in driven:
                raise CircuitError(f"primary output {net!r} is undriven")
        self.topological_order()  # raises on combinational cycles

    def topological_order(self) -> List[str]:
        """Combinational gate outputs in evaluation order (Kahn's algorithm).

        Flip-flop outputs are treated as sources (their value is part of the
        state, not computed combinationally), and flip-flops themselves are
        excluded from the order.

        Raises:
            CircuitError: if the combinational logic contains a cycle.
        """
        if self._order_cache is not None:
            return list(self._order_cache)

        sources = set(self._inputs) | {ff.output for ff in self.flip_flops}
        comb = {
            name: gate
            for name, gate in self._gates.items()
            if not gate.gate_type.is_sequential
        }
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for name, gate in comb.items():
            count = 0
            for net in gate.inputs:
                if net in comb:
                    dependents.setdefault(net, []).append(name)
                    count += 1
                elif net not in sources and net not in self._gates:
                    raise CircuitError(f"gate {name!r} reads undriven net {net!r}")
            indegree[name] = count

        ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for dependent in dependents.get(name, []):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(comb):
            raise CircuitError("combinational logic contains a cycle")
        self._order_cache = order
        return list(order)

    def structure_token(self) -> object:
        """Opaque token identifying the current netlist structure.

        The returned sentinel compares by identity: two calls return the
        *same* object for as long as the circuit is not mutated, and a
        different one after any ``add_input`` / ``add_output`` /
        ``add_gate``.  Callers (e.g. the engine's compiled-program cache)
        use it to detect stale derived data without hashing the whole
        netlist.  The token carries no state of its own.
        """
        if self._structure_token is None:
            self._structure_token = object()
        return self._structure_token

    def structure_digest(self) -> str:
        """Content hash of the netlist structure, stable across processes.

        Unlike :meth:`structure_token` (an identity sentinel, valid only
        within one process), the digest is computed from the declared
        inputs/outputs and every gate's type and pin connections, so it can
        key *persistent* derived data — the workload disk cache uses it so
        an edited netlist can never be served another circuit's cubes.  The
        circuit name is deliberately excluded: renaming a circuit does not
        change what it computes.
        """
        if self._structure_digest is None:
            digest = blake2b(digest_size=16)
            digest.update("|".join(self._inputs).encode())
            digest.update(b"\x1e")
            digest.update("|".join(self._outputs).encode())
            for name, gate in self._gates.items():
                digest.update(
                    f"\x1e{name}\x1f{gate.gate_type.name}\x1f{','.join(gate.inputs)}".encode()
                )
            self._structure_digest = digest.hexdigest()
        return self._structure_digest

    def levelize(self) -> Dict[str, int]:
        """Logic depth of every net (sources at level 0)."""
        levels: Dict[str, int] = {net: 0 for net in self._inputs}
        for ff in self.flip_flops:
            levels[ff.output] = 0
        for name in self.topological_order():
            gate = self._gates[name]
            levels[name] = 1 + max((levels.get(net, 0) for net in gate.inputs), default=0)
        return levels

    def depth(self) -> int:
        """Maximum combinational depth of the circuit."""
        levels = self.levelize()
        return max(levels.values()) if levels else 0

    def fanout_map(self) -> Dict[str, List[str]]:
        """Mapping from net name to the gates (by output net) that read it."""
        fanout: Dict[str, List[str]] = {net: [] for net in self.nets()}
        for gate in self._gates.values():
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate.output)
        return fanout

    def fanout_counts(self) -> Dict[str, int]:
        """Number of readers of every net (primary outputs count as one reader)."""
        counts = {net: len(readers) for net, readers in self.fanout_map().items()}
        for net in self._outputs:
            counts[net] = counts.get(net, 0) + 1
        return counts

    def transitive_fanin(self, net: str) -> List[str]:
        """All nets that can influence ``net`` (excluding ``net`` itself)."""
        seen: set = set()
        stack = [net]
        while stack:
            current = stack.pop()
            gate = self._gates.get(current)
            if gate is None or gate.gate_type.is_sequential and current != net:
                continue
            for parent in gate.inputs:
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return sorted(seen)

    # -- reporting -------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Summary statistics in the units the paper's Table I uses."""
        return {
            "primary_inputs": len(self._inputs),
            "primary_outputs": len(self._outputs),
            "flip_flops": self.n_flip_flops,
            "gates": self.n_gates,
            "test_pins": self.n_test_pins,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(name={self.name!r}, inputs={len(self._inputs)}, "
            f"ffs={self.n_flip_flops}, gates={self.n_gates})"
        )
