"""Reader and writer for the ISCAS/ITC ``.bench`` netlist format.

``.bench`` is the plain-text format the ISCAS-85/89 and ITC'99 benchmark
suites are distributed in::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G17 = DFF(G10)

Every line is either a comment, an ``INPUT``/``OUTPUT`` declaration or an
assignment ``net = GATE(arg, ...)``.  The parser is deliberately liberal
about whitespace and case, since benchmark files in the wild differ.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError

_DECL_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)\s*$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^\s*(?P<output>[^=\s]+)\s*=\s*(?P<type>[A-Za-z0-9_]+)\s*\(\s*(?P<args>[^)]*)\s*\)\s*$"
)


class BenchParseError(ValueError):
    """Raised when a ``.bench`` file cannot be parsed."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


def parse_bench(text: str, name: str = "bench_circuit") -> Circuit:
    """Parse ``.bench`` text into a validated :class:`Circuit`.

    Args:
        text: the file contents.
        name: name given to the resulting circuit.

    Raises:
        BenchParseError: on malformed lines.
        CircuitError: if the netlist is structurally invalid (undriven nets,
            combinational cycles, duplicate drivers).
    """
    circuit = Circuit(name=name)
    outputs: List[str] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        declaration = _DECL_RE.match(line)
        if declaration:
            kind, net = declaration.group(1).upper(), declaration.group(2).strip()
            if kind == "INPUT":
                circuit.add_input(net)
            else:
                outputs.append(net)
            continue
        assignment = _ASSIGN_RE.match(line)
        if assignment:
            output = assignment.group("output").strip()
            try:
                gate_type = GateType.from_name(assignment.group("type"))
            except ValueError as exc:
                raise BenchParseError(str(exc), line_number, raw_line) from None
            args = [a.strip() for a in assignment.group("args").split(",") if a.strip()]
            if gate_type.is_source and args:
                raise BenchParseError("source gates take no arguments", line_number, raw_line)
            try:
                circuit.add_gate(output, gate_type, args)
            except (CircuitError, ValueError) as exc:
                raise BenchParseError(str(exc), line_number, raw_line) from None
            continue
        raise BenchParseError("unrecognised statement", line_number, raw_line)

    for net in outputs:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def parse_bench_file(path: Union[str, Path], name: str = "") -> Circuit:
    """Parse a ``.bench`` file from disk; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=name or path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialise a circuit back to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to an equivalent
    circuit (same inputs, outputs, gates and connectivity).
    """
    lines: List[str] = [f"# {circuit.name}"]
    lines.append(f"# {len(circuit.primary_inputs)} inputs")
    lines.append(f"# {len(circuit.primary_outputs)} outputs")
    lines.append(f"# {circuit.n_flip_flops} D-type flipflops")
    lines.append(f"# {circuit.n_gates} gates")
    lines.append("")
    for net in circuit.primary_inputs:
        lines.append(f"INPUT({net})")
    lines.append("")
    for net in circuit.primary_outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for gate in circuit.gates.values():
        keyword = "BUFF" if gate.gate_type is GateType.BUF else gate.gate_type.name
        lines.append(f"{gate.output} = {keyword}({', '.join(gate.inputs)})")
    lines.append("")
    return "\n".join(lines)


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a ``.bench`` file on disk."""
    Path(path).write_text(write_bench(circuit))
