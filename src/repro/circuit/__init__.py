"""Gate-level netlist substrate.

The paper's evaluation runs on synthesised ITC'99 circuits; this package
provides everything needed to stand in for that flow offline:

* :mod:`gates` — gate types with two-valued (vectorised) and three-valued
  (ATPG) evaluation semantics,
* :mod:`netlist` — the :class:`Circuit` container with levelisation, fanout
  analysis and the full-scan combinational view,
* :mod:`bench_format` — reader/writer for the ISCAS/ITC ``.bench`` netlist
  format,
* :mod:`generator` — a synthetic sequential-circuit generator used to build
  ITC'99-sized stand-ins,
* :mod:`library` — small hand-written reference circuits (c17, a b01-style
  FSM, a counter) plus the ITC'99-profile factory,
* :mod:`simulator` — pattern-parallel logic simulation (two-valued) and
  scalar three-valued simulation for test generation.
"""

from repro.circuit.bench_format import parse_bench, parse_bench_file, write_bench
from repro.circuit.gates import GateType
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import (
    b01_like_fsm,
    c17,
    itc99_like,
    ripple_counter,
    toy_pipeline,
)
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.simulator import LogicSimulator, ThreeValuedSimulator

__all__ = [
    "GateType",
    "Gate",
    "Circuit",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "CircuitSpec",
    "generate_circuit",
    "c17",
    "b01_like_fsm",
    "ripple_counter",
    "toy_pipeline",
    "itc99_like",
    "LogicSimulator",
    "ThreeValuedSimulator",
]
