"""Logic simulation.

Two simulators share the same levelised evaluation order:

* :class:`LogicSimulator` — two-valued, pattern-parallel.  Input patterns are
  supplied as a ``(n_patterns, n_pins)`` binary matrix over the circuit's
  *test pins* (primary inputs followed by flip-flop outputs); every net is
  evaluated for all patterns at once as a NumPy boolean column.  This is the
  workhorse behind fault simulation and the switching-activity power model.
* :class:`ThreeValuedSimulator` — scalar 0/1/X simulation over a single
  partially specified assignment, used by PODEM to decide implications and
  X-path reachability.

``LogicSimulator`` is the *reference* two-valued implementation and the
parity oracle for the compiled bit-parallel engine in :mod:`repro.engine`;
production paths resolve their simulator through
:func:`repro.engine.backend.get_backend` instead of instantiating it
directly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.circuit.gates import GateType, evaluate_bool, evaluate_ternary
from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestSet


def check_pattern_matrix(patterns: np.ndarray, n_pins: int) -> np.ndarray:
    """Validate and normalise a pattern matrix to ``(n_patterns, n_pins)`` bool.

    The single validation authority for two-valued simulation: the naive
    simulator and every engine backend share it, so error cases and messages
    cannot diverge between backends.

    Raises:
        ValueError: for wrong shapes or patterns still containing X bits.
    """
    patterns = np.asarray(patterns)
    if patterns.ndim != 2 or patterns.shape[1] != n_pins:
        raise ValueError(
            f"patterns must have shape (n, {n_pins}), got {patterns.shape}"
        )
    if patterns.dtype != bool:
        if (patterns == X).any():
            raise ValueError("two-valued simulation requires fully specified patterns")
        patterns = patterns.astype(bool)
    return patterns


class LogicSimulator:
    """Pattern-parallel two-valued simulator for the full-scan view.

    Args:
        circuit: the circuit to simulate; it is validated and levelised once
            at construction, so repeated :meth:`simulate` calls are cheap.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._order = circuit.topological_order()
        self._input_pins = circuit.combinational_inputs
        self._pin_index = {net: i for i, net in enumerate(self._input_pins)}

    # -- helpers -----------------------------------------------------------
    def _check_patterns(self, patterns: np.ndarray) -> np.ndarray:
        return check_pattern_matrix(patterns, len(self._input_pins))

    # -- simulation --------------------------------------------------------------
    def simulate(self, patterns: np.ndarray) -> Dict[str, np.ndarray]:
        """Evaluate every net for every pattern.

        Args:
            patterns: ``(n_patterns, n_test_pins)`` binary/boolean matrix in
                the :attr:`Circuit.combinational_inputs` pin order, or a
                :class:`TestSet` converted by the caller with ``.matrix``.

        Returns:
            Mapping from net name to a boolean array of length ``n_patterns``.
        """
        patterns = self._check_patterns(patterns)
        n_patterns = patterns.shape[0]
        values: Dict[str, np.ndarray] = {}
        for net, column in zip(self._input_pins, patterns.T):
            values[net] = np.ascontiguousarray(column)
        for name in self._order:
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                values[name] = np.zeros(n_patterns, dtype=bool)
            elif gate.gate_type is GateType.CONST1:
                values[name] = np.ones(n_patterns, dtype=bool)
            else:
                values[name] = evaluate_bool(gate.gate_type, [values[net] for net in gate.inputs])
        return values

    def simulate_test_set(self, patterns: TestSet) -> Dict[str, np.ndarray]:
        """Simulate a fully specified :class:`TestSet` (convenience wrapper)."""
        return self.simulate(patterns.matrix)

    def observe_outputs(self, patterns: np.ndarray) -> np.ndarray:
        """Return the observable responses, one row per pattern.

        The columns follow :attr:`Circuit.combinational_outputs` (primary
        outputs, then flip-flop data inputs), which is what a tester compares
        after the capture cycle of a full-scan test.
        """
        values = self.simulate(patterns)
        outputs = self.circuit.combinational_outputs
        result = np.zeros((np.asarray(patterns).shape[0], len(outputs)), dtype=bool)
        for column, net in enumerate(outputs):
            result[:, column] = values[net]
        return result

    def gate_activity(self, patterns: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-net toggle indicators between consecutive patterns.

        Entry ``j`` of each array is ``True`` when the net value changes
        between pattern ``j`` and pattern ``j + 1``; arrays have length
        ``n_patterns - 1``.  This is the raw signal the power model weighs by
        node capacitance.
        """
        values = self.simulate(patterns)
        return {net: arr[1:] != arr[:-1] for net, arr in values.items()}

    def net_value_matrix(self, patterns: np.ndarray) -> "tuple[List[str], np.ndarray]":
        """All net values as ``(names, (n_nets, n_patterns) bool matrix)``.

        Row order is the simulation order (test pins, then topological gate
        order) — the same contract as the packed engine's implementation, so
        consumers like the switching-activity model are backend-agnostic.
        """
        values = self.simulate(patterns)
        names = list(values.keys())
        if not names:
            return names, np.zeros((0, np.asarray(patterns).shape[0]), dtype=bool)
        return names, np.vstack([values[net] for net in names])


class ThreeValuedSimulator:
    """Scalar three-valued simulator used by the ATPG engine.

    The simulator owns a value map (net name -> 0/1/X) that callers update
    through :meth:`set_pin` / :meth:`assign`, after which :meth:`propagate`
    re-evaluates the combinational logic in topological order.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._order = circuit.topological_order()
        self._input_pins = circuit.combinational_inputs
        self.values: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        """Set every net (inputs included) back to X."""
        self.values = {net: X for net in self.circuit.nets()}

    def set_pin(self, net: str, value: int) -> None:
        """Assign a test pin (primary input or flip-flop output)."""
        if net not in self._input_pins:
            raise ValueError(f"{net!r} is not a test pin of {self.circuit.name}")
        if value not in (ZERO, ONE, X):
            raise ValueError(f"invalid logic value {value!r}")
        self.values[net] = value

    def assign(self, assignment: Mapping[str, int]) -> None:
        """Assign several test pins at once."""
        for net, value in assignment.items():
            self.set_pin(net, value)

    def propagate(self) -> Dict[str, int]:
        """Re-evaluate all combinational gates; returns the full value map."""
        for name in self._order:
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                self.values[name] = ZERO
            elif gate.gate_type is GateType.CONST1:
                self.values[name] = ONE
            else:
                self.values[name] = evaluate_ternary(
                    gate.gate_type, [self.values[net] for net in gate.inputs]
                )
        return dict(self.values)

    def value_of(self, net: str) -> int:
        """Current value of a net (call :meth:`propagate` first)."""
        return self.values[net]

    def simulate_cube(self, cube_bits: Sequence[int]) -> Dict[str, int]:
        """Reset, apply a test cube over the test pins, propagate and return values."""
        if len(cube_bits) != len(self._input_pins):
            raise ValueError(
                f"cube has {len(cube_bits)} bits, circuit has {len(self._input_pins)} test pins"
            )
        self.reset()
        for net, value in zip(self._input_pins, cube_bits):
            self.values[net] = int(value)
        return self.propagate()
