"""Gate types and their evaluation semantics.

Two evaluation styles are provided because the library needs both:

* :func:`evaluate_bool` — pattern-parallel two-valued evaluation on NumPy
  boolean arrays.  The logic simulator packs one pattern per array column, so
  a single call evaluates a gate for every pattern at once; this is what
  keeps the pure-Python switching-activity simulation workable for
  thousand-gate circuits.
* :func:`evaluate_ternary` — scalar three-valued (0/1/X) evaluation used by
  the PODEM ATPG, where unassigned primary inputs propagate X through the
  circuit.

The encoding of the ternary domain reuses the cube encoding
(:data:`repro.cubes.bits.X`), so ATPG results drop straight into
:class:`~repro.cubes.cube.TestCube` objects.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

import numpy as np

from repro.cubes.bits import ONE, X, ZERO


class GateType(enum.Enum):
    """Supported gate primitives (the ``.bench`` vocabulary plus constants)."""

    INPUT = "INPUT"
    BUF = "BUFF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @classmethod
    def from_name(cls, name: str) -> "GateType":
        """Parse a gate-type keyword as found in ``.bench`` files."""
        key = name.strip().upper()
        aliases = {"BUFF": "BUF", "BUFFER": "BUF", "INV": "NOT", "FF": "DFF", "DFFSR": "DFF"}
        key = aliases.get(key, key)
        try:
            return cls[key]
        except KeyError:
            raise ValueError(f"unsupported gate type: {name!r}") from None

    @property
    def is_sequential(self) -> bool:
        """``True`` for state elements (DFFs)."""
        return self is GateType.DFF

    @property
    def is_source(self) -> bool:
        """``True`` for gates with no logic inputs (primary inputs, constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    def arity_ok(self, n_inputs: int) -> bool:
        """Check whether ``n_inputs`` is a legal fan-in for this gate type."""
        if self.is_source:
            return n_inputs == 0
        if self in (GateType.BUF, GateType.NOT, GateType.DFF):
            return n_inputs == 1
        return n_inputs >= 2


def evaluate_bool(gate_type: GateType, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate a gate over pattern-parallel boolean arrays.

    Args:
        gate_type: the gate primitive (must not be a source or a DFF — the
            simulator resolves those separately).
        inputs: one boolean array per gate input, all the same shape.

    Returns:
        Boolean array of the gate output, one entry per pattern.
    """
    if gate_type in (GateType.BUF, GateType.DFF):
        return inputs[0].copy()
    if gate_type is GateType.NOT:
        return ~inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        result = inputs[0].copy()
        for value in inputs[1:]:
            result &= value
        return ~result if gate_type is GateType.NAND else result
    if gate_type in (GateType.OR, GateType.NOR):
        result = inputs[0].copy()
        for value in inputs[1:]:
            result |= value
        return ~result if gate_type is GateType.NOR else result
    if gate_type in (GateType.XOR, GateType.XNOR):
        result = inputs[0].copy()
        for value in inputs[1:]:
            result ^= value
        return ~result if gate_type is GateType.XNOR else result
    raise ValueError(f"cannot evaluate gate type {gate_type} as a logic function")


def _ternary_and(values: Sequence[int]) -> int:
    if any(v == ZERO for v in values):
        return ZERO
    if all(v == ONE for v in values):
        return ONE
    return X


def _ternary_or(values: Sequence[int]) -> int:
    if any(v == ONE for v in values):
        return ONE
    if all(v == ZERO for v in values):
        return ZERO
    return X


def _ternary_xor(values: Sequence[int]) -> int:
    if any(v == X for v in values):
        return X
    return int(np.bitwise_xor.reduce([int(v) for v in values]))


def _ternary_not(value: int) -> int:
    if value == X:
        return X
    return ONE - value


def evaluate_ternary(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate in three-valued (0/1/X) logic.

    Controlling values dominate: an AND with any 0 input is 0 even if other
    inputs are X, which is exactly the behaviour PODEM's implication step
    relies on.
    """
    values: List[int] = [int(v) for v in inputs]
    if gate_type in (GateType.BUF, GateType.DFF):
        return values[0]
    if gate_type is GateType.NOT:
        return _ternary_not(values[0])
    if gate_type is GateType.AND:
        return _ternary_and(values)
    if gate_type is GateType.NAND:
        return _ternary_not(_ternary_and(values))
    if gate_type is GateType.OR:
        return _ternary_or(values)
    if gate_type is GateType.NOR:
        return _ternary_not(_ternary_or(values))
    if gate_type is GateType.XOR:
        return _ternary_xor(values)
    if gate_type is GateType.XNOR:
        return _ternary_not(_ternary_xor(values))
    if gate_type is GateType.CONST0:
        return ZERO
    if gate_type is GateType.CONST1:
        return ONE
    raise ValueError(f"cannot evaluate gate type {gate_type} as a logic function")


def controlling_value(gate_type: GateType) -> int:
    """The input value that alone determines the gate output (AND->0, OR->1).

    Raises:
        ValueError: for gate types without a controlling value (XOR, NOT, ...).
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return ZERO
    if gate_type in (GateType.OR, GateType.NOR):
        return ONE
    raise ValueError(f"{gate_type} has no controlling value")


def inversion_parity(gate_type: GateType) -> int:
    """1 if the gate inverts its 'natural' function (NAND/NOR/NOT/XNOR), else 0."""
    return 1 if gate_type in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR) else 0
