"""Common interface and registry for X-filling algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cubes.cube import TestSet
from repro.cubes.metrics import peak_toggles, total_toggles


@dataclass
class FillOutcome:
    """A filled pattern set together with its toggle metrics.

    Attributes:
        filled: the fully specified pattern set.
        peak_toggles: maximum adjacent Hamming distance (the paper's metric).
        total_toggles: sum of adjacent Hamming distances (average-power proxy).
        filler_name: name of the algorithm that produced the fill.
    """

    filled: TestSet
    peak_toggles: int
    total_toggles: int
    filler_name: str


class Filler(abc.ABC):
    """Base class for X-filling algorithms.

    Subclasses implement :meth:`fill`, which must return a fully specified
    :class:`TestSet` preserving every care bit of the input; the
    :meth:`TestSet.filled` helper enforces both properties, so subclasses are
    encouraged to build a candidate matrix and call it.
    """

    #: canonical name used in the paper's tables (e.g. ``"DP-fill"``).
    name: str = "filler"

    @abc.abstractmethod
    def fill(self, patterns: TestSet) -> TestSet:
        """Return a fully specified copy of ``patterns``."""

    def run(self, patterns: TestSet) -> FillOutcome:
        """Fill ``patterns`` and report toggle metrics in one call."""
        filled = self.fill(patterns)
        return FillOutcome(
            filled=filled,
            peak_toggles=peak_toggles(filled),
            total_toggles=total_toggles(filled),
            filler_name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], Filler]] = {}


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register_filler(name: str, factory: Callable[[], Filler], aliases: Optional[List[str]] = None) -> None:
    """Register a filler factory under ``name`` (and optional aliases).

    Registration is idempotent for identical factories; re-registering a name
    with a different factory raises ``ValueError`` to catch accidental
    collisions between algorithms.
    """
    for key in [name] + list(aliases or []):
        canon = _canonical(key)
        existing = _REGISTRY.get(canon)
        if existing is not None and existing is not factory:
            raise ValueError(f"filler name already registered: {key}")
        _REGISTRY[canon] = factory


def get_filler(name: str, **kwargs) -> Filler:
    """Instantiate a registered filler by table name (case/format insensitive).

    Keyword arguments are forwarded to the factory (e.g. ``seed`` for
    ``R-fill``).

    Raises:
        KeyError: for unknown names; the message lists the available ones.
    """
    canon = _canonical(name)
    if canon not in _REGISTRY:
        raise KeyError(f"unknown filler {name!r}; available: {sorted(set(_REGISTRY))}")
    factory = _REGISTRY[canon]
    return factory(**kwargs) if kwargs else factory()


def available_fillers() -> List[str]:
    """Sorted list of registered canonical filler names."""
    return sorted(set(_REGISTRY))
