"""X-filling algorithms.

Every algorithm consumes an ordered, partially specified
:class:`~repro.cubes.cube.TestSet` and returns a fully specified one with all
care bits preserved.  The package contains the baselines the paper compares
against (Tables II–V):

=============  ==================================================================
name           algorithm
=============  ==================================================================
``0-fill``     replace every X with 0
``1-fill``     replace every X with 1
``R-fill``     replace every X with a random bit (seeded, reproducible)
``MT-fill``    minimum-transition fill: copy the nearest earlier specified bit
               of the *same* cube (minimises scan-shift transitions)
``Adj-fill``   adjacent fill: copy the same pin of the *previous* pattern
               (greedy minimisation of capture toggles)
``B-fill``     the X-Stat two-phase fill of [22] (phase 1 squeezes X stretches
               down to a single X, phase 2 places each remaining toggle
               greedily); ``X-Stat`` is an alias
``DP-fill``    the paper's optimal fill (wraps :func:`repro.core.dpfill.dp_fill`)
=============  ==================================================================

Use :func:`get_filler` / :func:`available_fillers` to look algorithms up by
the names used in the paper's tables.
"""

from repro.filling.base import Filler, FillOutcome, available_fillers, get_filler, register_filler
from repro.filling.adjfill import AdjacentFill
from repro.filling.dp import DPFill
from repro.filling.simple import MinimumTransitionFill, OneFill, RandomFill, ZeroFill
from repro.filling.xstat import XStatFill

__all__ = [
    "Filler",
    "FillOutcome",
    "get_filler",
    "register_filler",
    "available_fillers",
    "ZeroFill",
    "OneFill",
    "RandomFill",
    "MinimumTransitionFill",
    "AdjacentFill",
    "XStatFill",
    "DPFill",
]
