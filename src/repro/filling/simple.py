"""Constant, random and minimum-transition fills (the cheap baselines).

These are the classic fills every low-power-test paper compares against:
0-fill and 1-fill bias the circuit toward a constant state, R-fill is the
"do nothing clever" reference, and MT-fill (minimum-transition / adjacent
fill within a pattern) minimises *shift* transitions, which is the industry
default when capture power is not the concern.
"""

from __future__ import annotations

import numpy as np

from repro.cubes.bits import BIT_DTYPE, ONE, X, ZERO
from repro.cubes.cube import TestSet
from repro.filling.base import Filler, register_filler


class ZeroFill(Filler):
    """Replace every don't-care with logic 0."""

    name = "0-fill"

    def fill(self, patterns: TestSet) -> TestSet:
        data = patterns.matrix.copy()
        data[data == X] = ZERO
        return patterns.filled(data)


class OneFill(Filler):
    """Replace every don't-care with logic 1."""

    name = "1-fill"

    def fill(self, patterns: TestSet) -> TestSet:
        data = patterns.matrix.copy()
        data[data == X] = ONE
        return patterns.filled(data)


class RandomFill(Filler):
    """Replace every don't-care with an independent uniform random bit.

    Args:
        seed: RNG seed; the fill is deterministic for a given seed so that
            experiment tables are reproducible run to run.
    """

    name = "R-fill"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def fill(self, patterns: TestSet) -> TestSet:
        rng = np.random.default_rng(self.seed)
        data = patterns.matrix.copy()
        mask = data == X
        data[mask] = rng.integers(0, 2, size=int(mask.sum())).astype(BIT_DTYPE)
        return patterns.filled(data)


class MinimumTransitionFill(Filler):
    """Minimum-transition (intra-pattern adjacent) fill.

    Each X takes the value of the nearest *earlier* specified bit in the same
    pattern; a leading X run takes the first specified value.  A pattern with
    no specified bit at all becomes all zeros.  This minimises the number of
    transitions along the scan chain while shifting the pattern in, which is
    why commercial flows use it as the low-(shift-)power default.
    """

    name = "MT-fill"

    def fill(self, patterns: TestSet) -> TestSet:
        data = patterns.matrix.copy()
        n_patterns, n_pins = data.shape
        for row in range(n_patterns):
            bits = data[row]
            specified = np.flatnonzero(bits != X)
            if specified.size == 0:
                bits[:] = ZERO
                continue
            # Fill the leading X run from the first specified bit, then sweep
            # left to right propagating the last seen value.
            first = int(specified[0])
            bits[:first] = bits[first]
            last_value = bits[first]
            for col in range(first + 1, n_pins):
                if bits[col] == X:
                    bits[col] = last_value
                else:
                    last_value = bits[col]
        return patterns.filled(data)


register_filler("0-fill", ZeroFill, aliases=["zero-fill", "zero"])
register_filler("1-fill", OneFill, aliases=["one-fill", "one"])
register_filler("R-fill", RandomFill, aliases=["random-fill", "random"])
register_filler("MT-fill", MinimumTransitionFill, aliases=["mt", "minimum-transition"])
