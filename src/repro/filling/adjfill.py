"""Adjacent fill across patterns (the Adj-fill comparator of Table V, ref. [21]).

Adjacent fill is the natural greedy for *capture* power: every don't-care in
pattern ``i`` copies the (already filled) value of the same pin in pattern
``i - 1``, so a pin only toggles when a care bit forces it to.  It is locally
optimal per boundary but, unlike DP-fill, it cannot trade a toggle at one
boundary for slack at another, so its *peak* can be far from optimal.
"""

from __future__ import annotations


from repro.cubes.bits import X, ZERO
from repro.cubes.cube import TestSet
from repro.filling.base import Filler, register_filler


class AdjacentFill(Filler):
    """Fill each X with the value of the same pin in the previous pattern.

    Args:
        first_pattern_fill: value used for don't-cares of the very first
            pattern (there is no previous pattern to copy from).  The paper's
            comparator [21] targets LOS transition tests where the first
            vector's fill barely matters; 0 is the conventional choice.
    """

    name = "Adj-fill"

    def __init__(self, first_pattern_fill: int = ZERO) -> None:
        if first_pattern_fill not in (0, 1):
            raise ValueError("first_pattern_fill must be 0 or 1")
        self.first_pattern_fill = first_pattern_fill

    def fill(self, patterns: TestSet) -> TestSet:
        data = patterns.matrix.copy()
        if data.size == 0:
            return patterns.filled(data)
        first_mask = data[0] == X
        data[0, first_mask] = self.first_pattern_fill
        for row in range(1, data.shape[0]):
            mask = data[row] == X
            data[row, mask] = data[row - 1, mask]
        return patterns.filled(data)


register_filler("Adj-fill", AdjacentFill, aliases=["adjacent-fill", "adj"])
