"""Reconstruction of the X-Stat fill (the paper's B-fill columns, ref. [22]).

X-Stat is the strongest pre-existing heuristic the paper compares against
(it is the ``B-fill`` column of Tables II–IV and the ``XStat`` column of
Tables V–VI).  The original paper is not open source; this reconstruction
follows the description given in §III and Fig. 1 of the DP-fill paper:

* **Phase 1** — adjacent-fill each don't-care stretch of the pin matrix so
  that ``0 X..X 1`` / ``1 X..X 0`` stretches shrink to a single remaining X
  (``0 X 1`` / ``1 X 0``), and ``0 X..X 0`` / ``1 X..X 1`` stretches are
  filled completely.  The position of the surviving X inside the stretch is a
  free parameter of the reconstruction (:attr:`XStatFill.squeeze`); the
  greedy nature of this phase is exactly what makes X-Stat sub-optimal in
  Fig. 1, and the ablation benchmark sweeps the choice.
* **Phase 2** — each surviving X is a binary choice between placing its
  toggle at the boundary on its left or on its right.  The choices are
  resolved greedily against the running per-boundary toggle profile, most
  constrained (highest surrounding load) first.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cubes.bits import BIT_DTYPE, X, ZERO
from repro.cubes.cube import TestSet
from repro.filling.base import Filler, register_filler

_SQUEEZE_MODES = ("middle", "left", "right")


class XStatFill(Filler):
    """Two-phase statistical X-fill (reconstruction of X-Stat / B-fill).

    Args:
        squeeze: where phase 1 leaves the surviving X of a ``0X..X1`` stretch —
            ``"middle"`` (default), ``"left"`` (right after the left care
            bit) or ``"right"`` (right before the right care bit).
    """

    name = "B-fill"

    def __init__(self, squeeze: str = "middle") -> None:
        if squeeze not in _SQUEEZE_MODES:
            raise ValueError(f"squeeze must be one of {_SQUEEZE_MODES}")
        self.squeeze = squeeze

    # -- phase 1 -------------------------------------------------------------
    def _squeeze_position(self, left: int, right: int) -> int:
        """Column index of the X that survives phase 1 for a gap (left, right)."""
        if self.squeeze == "left":
            return left + 1
        if self.squeeze == "right":
            return right - 1
        return (left + right) // 2

    def _phase1(self, pin: np.ndarray) -> List[Tuple[int, int, int, int]]:
        """Shrink every stretch; return the surviving binary choices.

        Each returned tuple is ``(row, x_col, left_value, right_value)`` for a
        surviving X at ``x_col`` whose neighbours are already specified.
        """
        n_pins, n_patterns = pin.shape
        choices: List[Tuple[int, int, int, int]] = []
        for row in range(n_pins):
            bits = pin[row]
            specified = np.flatnonzero(bits != X)
            if specified.size == 0:
                bits[:] = ZERO
                continue
            first, last = int(specified[0]), int(specified[-1])
            bits[:first] = bits[first]
            bits[last + 1 :] = bits[last]
            for left, right in zip(specified[:-1], specified[1:]):
                left, right = int(left), int(right)
                if right == left + 1:
                    continue
                left_value, right_value = int(bits[left]), int(bits[right])
                if left_value == right_value:
                    bits[left + 1 : right] = left_value
                    continue
                keep = self._squeeze_position(left, right)
                bits[left + 1 : keep] = left_value
                bits[keep + 1 : right] = right_value
                choices.append((row, keep, left_value, right_value))
        return choices

    # -- phase 2 ----------------------------------------------------------------
    @staticmethod
    def _base_profile(pin: np.ndarray) -> np.ndarray:
        """Per-boundary toggles among the bits already specified after phase 1."""
        n_patterns = pin.shape[1]
        if n_patterns < 2:
            return np.zeros(0, dtype=np.int64)
        left, right = pin[:, :-1], pin[:, 1:]
        fixed = (left != X) & (right != X) & (left != right)
        return np.count_nonzero(fixed, axis=0).astype(np.int64)

    def _phase2(self, pin: np.ndarray, choices: List[Tuple[int, int, int, int]]) -> None:
        """Resolve every surviving X greedily against the running profile."""
        profile = self._base_profile(pin)
        # Most constrained first: choices whose two candidate boundaries are
        # already the most loaded are resolved before the flexible ones.
        def pressure(choice: Tuple[int, int, int, int]) -> int:
            __, col, __, __ = choice
            return int(max(profile[col - 1], profile[col]))

        for row, col, left_value, right_value in sorted(choices, key=pressure, reverse=True):
            load_if_left = profile[col]          # X takes left value -> toggle at boundary col
            load_if_right = profile[col - 1]     # X takes right value -> toggle at boundary col-1
            if load_if_left <= load_if_right:
                pin[row, col] = left_value
                profile[col] += 1
            else:
                pin[row, col] = right_value
                profile[col - 1] += 1

    # -- driver -----------------------------------------------------------------
    def fill(self, patterns: TestSet) -> TestSet:
        pin = patterns.pin_matrix().astype(BIT_DTYPE)
        if pin.size == 0:
            return patterns.filled(patterns.matrix.copy())
        choices = self._phase1(pin)
        if pin.shape[1] >= 2:
            self._phase2(pin, choices)
        else:
            for row, col, left_value, __ in choices:  # pragma: no cover - defensive
                pin[row, col] = left_value
        return patterns.filled(pin.T)


register_filler("B-fill", XStatFill, aliases=["x-stat", "xstat", "xstat-fill", "b"])
