"""Filler-interface wrapper around the DP-fill core algorithm.

Having DP-fill available through the common :class:`~repro.filling.base.Filler`
interface lets the experiment harness sweep it alongside the baselines with
one code path (Tables II–IV iterate a list of filler names per ordering).
"""

from __future__ import annotations

from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.filling.base import Filler, register_filler


class DPFill(Filler):
    """Optimal X-fill for a given ordering (the paper's contribution).

    Args:
        account_base_toggles: forwarded to :func:`repro.core.dpfill.dp_fill`;
            the default ``True`` optimises the true peak-toggle objective,
            ``False`` reproduces the literal interval-only formulation.
    """

    name = "DP-fill"

    def __init__(self, account_base_toggles: bool = True) -> None:
        self.account_base_toggles = account_base_toggles

    def fill(self, patterns: TestSet) -> TestSet:
        report = dp_fill(patterns, account_base_toggles=self.account_base_toggles)
        return report.filled


register_filler("DP-fill", DPFill, aliases=["dp", "dpfill", "optimum-fill"])
