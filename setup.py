"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that ``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package required for PEP 660 editable wheels.
"""

from setuptools import setup

setup()
