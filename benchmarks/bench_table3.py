"""Benchmark + shape check for Table III (X-Stat ordering x fill methods)."""

from __future__ import annotations

from repro.experiments import table2, table3
from repro.experiments.fill_sweep import FILL_METHODS


def test_bench_table3(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: table3.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in result.rows:
        values = {method: row[method] for method in FILL_METHODS}
        assert values["DP-fill"] == min(values.values()), row


def test_bench_xstat_ordering_helps_dpfill(benchmark, workload_names, workloads):
    """Shape check across tables: for most circuits the X-Stat ordering does
    not hurt DP-fill compared with the raw tool ordering (the paper's Tables
    II vs III trend), measured on the aggregate."""
    tool = table2.run(workload_names)
    xstat = benchmark.pedantic(
        lambda: table3.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    tool_total = sum(row["DP-fill"] for row in tool.rows)
    xstat_total = sum(row["DP-fill"] for row in xstat.rows)
    assert xstat_total <= 1.25 * tool_total
