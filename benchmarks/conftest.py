"""Shared fixtures for the benchmark harness.

The benchmark suite regenerates every table/figure of the paper on a reduced
benchmark subset so a full ``pytest benchmarks/ --benchmark-only`` run stays
in the minutes range.  Set ``REPRO_BENCH_FULL=1`` to benchmark the complete
default benchmark list instead (and ``REPRO_INCLUDE_LARGE=1`` to add the
scaled b14-b22 profiles on top).
"""

from __future__ import annotations

from typing import List

import pytest

from repro import envvars
from repro.experiments.workloads import build_workloads, default_workload_names

#: Reduced benchmark subset used by default: two PODEM-flow circuits and two
#: synthetic-cube circuits spanning small to medium sizes.
BENCH_NAMES: List[str] = ["b01", "b03", "b08", "b04", "b12"]


def bench_names() -> List[str]:
    """Benchmark names the harness runs over."""
    if envvars.BENCH_FULL.read():
        return default_workload_names()
    return list(BENCH_NAMES)


@pytest.fixture(scope="session")
def workload_names() -> List[str]:
    """Benchmark names for this session."""
    return bench_names()


@pytest.fixture(scope="session")
def workloads(workload_names):
    """Prebuilt workloads (cached) so the benchmarked callables exclude ATPG time."""
    return build_workloads(workload_names)
