"""Benchmark + shape check for Table IV (I-Ordering x fill methods)."""

from __future__ import annotations

from repro.experiments import table2, table4
from repro.experiments.fill_sweep import FILL_METHODS


def test_bench_table4(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: table4.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in result.rows:
        values = {method: row[method] for method in FILL_METHODS}
        assert values["DP-fill"] == min(values.values()), row


def test_bench_iordering_beats_tool_ordering_for_dpfill(benchmark, workload_names, workloads):
    """The headline Table IV trend: I-Ordering + DP-fill is at least as good
    as tool ordering + DP-fill on every circuit (the I-Ordering search always
    has the option of rejecting the interleave, so per-circuit regressions can
    only come from evaluation noise — there is none here)."""
    tool = table2.run(workload_names)
    iord = benchmark.pedantic(
        lambda: table4.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    for tool_row, iord_row in zip(tool.rows, iord.rows):
        assert iord_row["DP-fill"] <= tool_row["DP-fill"], tool_row["circuit"]
