"""Micro-benchmarks of the core algorithms (no circuits involved).

These are not tied to a specific paper table; they quantify the claimed
complexities — the ``O(k log k)`` greedy colouring, the ``O(k^2)`` lower
bound and the end-to-end DP-fill — on synthetic cube sets of increasing size,
and they back the scalability statement in the README.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
import pytest

from repro.core.bcp import bcp_lower_bound, solve_bcp, solve_weighted_bcp
from repro.core.dpfill import dp_fill
from repro.core.intervals import extract_intervals
from repro.core.ordering import interleaved_ordering
from repro.cubes.bits import X
from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.orderings.isa import ISAOrdering
from repro.orderings.xstat_ordering import XStatOrdering


def _cube_set(n_pins: int, n_patterns: int, seed: int = 1):
    return generate_cube_set(
        CubeSetSpec(n_pins=n_pins, n_patterns=n_patterns, x_fraction=0.8, seed=seed)
    )


def _scratch_evaluator(candidate: TestSet) -> int:
    """The pre-reuse evaluation path: full re-extraction + full solve.

    This is what every candidate ``k`` of the I-Ordering search cost before
    the :class:`ExtractionPlan` reuse landed; the benchmark keeps it around
    as the baseline the reuse is measured against.
    """
    if len(candidate) < 2:
        return 0
    extraction = extract_intervals(candidate)
    return solve_weighted_bcp(extraction.intervals, extraction.base_toggles).peak


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_extract_intervals(benchmark, n_pins, n_patterns):
    cubes = _cube_set(n_pins, n_patterns)
    result = benchmark(lambda: extract_intervals(cubes))
    assert result.n_pins == n_pins


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_bcp_lower_bound(benchmark, n_pins, n_patterns):
    intervals = extract_intervals(_cube_set(n_pins, n_patterns)).intervals
    value = benchmark(lambda: bcp_lower_bound(intervals))
    assert value >= 0


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_solve_bcp(benchmark, n_pins, n_patterns):
    intervals = extract_intervals(_cube_set(n_pins, n_patterns)).intervals
    solution = benchmark(lambda: solve_bcp(intervals))
    assert solution.peak == solution.lower_bound


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_dp_fill_end_to_end(benchmark, n_pins, n_patterns):
    cubes = _cube_set(n_pins, n_patterns)
    report = benchmark(lambda: dp_fill(cubes))
    assert report.filled.is_fully_specified()


def test_bench_interleaved_ordering(benchmark):
    cubes = _cube_set(200, 120)
    result = benchmark(lambda: interleaved_ordering(cubes))
    assert result.peak is not None


# -- I-Ordering evaluation: extraction reuse vs re-extraction ---------------
@pytest.mark.parametrize("n_pins,n_patterns", [(200, 120), (400, 400)])
def test_bench_ordering_search_scratch(benchmark, n_pins, n_patterns):
    """Baseline: every candidate k re-extracts and re-solves from scratch."""
    cubes = _cube_set(n_pins, n_patterns)
    result = benchmark(lambda: interleaved_ordering(cubes, evaluator=_scratch_evaluator))
    assert result.peak is not None


@pytest.mark.parametrize("n_pins,n_patterns", [(200, 120), (400, 400)])
def test_bench_ordering_search_reused(benchmark, n_pins, n_patterns):
    """Default path: one ExtractionPlan, permuted per candidate k."""
    cubes = _cube_set(n_pins, n_patterns)
    result = benchmark(lambda: interleaved_ordering(cubes))
    assert result.peak is not None


# -- greedy NN tours: hoisted-plane GEMV vs per-step boolean masks ----------
def _nn_tour_masks(patterns: TestSet, distance: str) -> List[int]:
    """The pre-hoisting greedy tour: fresh boolean ``(n, pins)`` masks per step.

    This is what :class:`XStatOrdering` / :class:`ISAOrdering` cost before
    the specified-plane decomposition was hoisted out of the loop; the
    benchmark keeps it as the baseline the hoist is measured against, and
    the orderings must reproduce its tours bit for bit.
    """
    n = len(patterns)
    data = patterns.matrix
    specified = data != X
    visited = np.zeros(n, dtype=bool)
    current = int(np.argmin(patterns.x_counts_per_pattern()))
    permutation = [current]
    visited[current] = True
    for __ in range(n - 1):
        both = specified & specified[current][None, :]
        differs = (data != data[current]) & both
        if distance == "xstat":
            hard = differs.sum(axis=1).astype(np.float64)
            soft = (~both).sum(axis=1).astype(np.float64)
            cost = hard + 0.5 * soft
            cost[visited] = np.inf
        else:
            cost = np.count_nonzero(differs, axis=1).astype(np.int64)
            cost[visited] = np.iinfo(np.int64).max
        nxt = int(np.argmin(cost))
        permutation.append(nxt)
        visited[nxt] = True
        current = nxt
    return permutation


_ORDERINGS = {"xstat": XStatOrdering, "isa": ISAOrdering}


@pytest.mark.parametrize("distance", sorted(_ORDERINGS))
@pytest.mark.parametrize("n_pins,n_patterns", [(100, 80), (300, 200)])
def test_bench_nn_tour_masks(benchmark, n_pins, n_patterns, distance):
    """Baseline: per-step boolean-mask distance evaluation."""
    cubes = _cube_set(n_pins, n_patterns)
    permutation = benchmark(lambda: _nn_tour_masks(cubes, distance))
    assert len(permutation) == n_patterns


@pytest.mark.parametrize("distance", sorted(_ORDERINGS))
@pytest.mark.parametrize("n_pins,n_patterns", [(100, 80), (300, 200)])
def test_bench_nn_tour_planes(benchmark, n_pins, n_patterns, distance):
    """Default path: hoisted indicator planes, one GEMV per step."""
    cubes = _cube_set(n_pins, n_patterns)
    result = benchmark(lambda: _ORDERINGS[distance]().order(cubes))
    assert result.permutation == _nn_tour_masks(cubes, distance)


def _nn_tour_report() -> float:
    """Standalone section: time both tour formulations, return worst speedup."""
    sizes = [(100, 80), (300, 200), (600, 400)]
    print("\ngreedy NN tours (xstat / isa): boolean masks vs hoisted planes")
    print(f"{'cube set':>12} {'dist':>6} {'masks (ms)':>11} {'planes (ms)':>12} {'speedup':>8}")
    print("-" * 54)
    worst = float("inf")
    for n_pins, n_patterns in sizes:
        cubes = _cube_set(n_pins, n_patterns)
        for distance, ordering_cls in sorted(_ORDERINGS.items()):
            baseline_perm = _nn_tour_masks(cubes, distance)
            assert ordering_cls().order(cubes).permutation == baseline_perm, distance
            t_masks = t_planes = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                _nn_tour_masks(cubes, distance)
                t_masks = min(t_masks, time.perf_counter() - start)
                start = time.perf_counter()
                ordering_cls().order(cubes)
                t_planes = min(t_planes, time.perf_counter() - start)
            speedup = t_masks / t_planes
            worst = min(worst, speedup)
            print(
                f"{n_pins:>5}x{n_patterns:<6} {distance:>6} {t_masks * 1000:>11.1f} "
                f"{t_planes * 1000:>12.1f} {speedup:>7.1f}x"
            )
    return worst


def main() -> int:
    """Standalone mode: quantify the extraction-reuse win in the search.

    Prints, per cube-set size, the wall-clock of the I-Ordering search with
    the scratch evaluator vs the plan-reuse default (results asserted equal
    first), plus the per-candidate evaluation cost of both paths.
    """
    sizes = [(200, 120), (400, 400), (600, 600)]
    print(f"{'cube set':>12} {'scratch (ms)':>13} {'reused (ms)':>12} {'speedup':>8}")
    print("-" * 49)
    worst = float("inf")
    for n_pins, n_patterns in sizes:
        cubes = _cube_set(n_pins, n_patterns)
        slow = interleaved_ordering(cubes, evaluator=_scratch_evaluator)
        fast = interleaved_ordering(cubes)
        assert slow.permutation == fast.permutation and slow.peak == fast.peak
        t_slow = t_fast = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            interleaved_ordering(cubes, evaluator=_scratch_evaluator)
            t_slow = min(t_slow, time.perf_counter() - start)
            start = time.perf_counter()
            interleaved_ordering(cubes)
            t_fast = min(t_fast, time.perf_counter() - start)
        speedup = t_slow / t_fast
        worst = min(worst, speedup)
        print(
            f"{n_pins:>5}x{n_patterns:<6} {t_slow * 1000:>13.1f} {t_fast * 1000:>12.1f} "
            f"{speedup:>7.1f}x"
        )
    code = 0
    if worst < 1.0:
        print("WARNING: extraction reuse slower than re-extraction")
        code = 1
    worst_tour = _nn_tour_report()
    if worst_tour < 1.0:
        print("WARNING: hoisted-plane NN tour slower than the boolean-mask loop")
        code = 1
    return code


if __name__ == "__main__":
    import sys

    sys.exit(main())
