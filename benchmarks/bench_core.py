"""Micro-benchmarks of the core algorithms (no circuits involved).

These are not tied to a specific paper table; they quantify the claimed
complexities — the ``O(k log k)`` greedy colouring, the ``O(k^2)`` lower
bound and the end-to-end DP-fill — on synthetic cube sets of increasing size,
and they back the scalability statement in the README.
"""

from __future__ import annotations

import pytest

from repro.core.bcp import bcp_lower_bound, solve_bcp
from repro.core.dpfill import dp_fill
from repro.core.intervals import extract_intervals
from repro.core.ordering import interleaved_ordering
from repro.cubes.generator import CubeSetSpec, generate_cube_set


def _cube_set(n_pins: int, n_patterns: int, seed: int = 1):
    return generate_cube_set(
        CubeSetSpec(n_pins=n_pins, n_patterns=n_patterns, x_fraction=0.8, seed=seed)
    )


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_extract_intervals(benchmark, n_pins, n_patterns):
    cubes = _cube_set(n_pins, n_patterns)
    result = benchmark(lambda: extract_intervals(cubes))
    assert result.n_pins == n_pins


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_bcp_lower_bound(benchmark, n_pins, n_patterns):
    intervals = extract_intervals(_cube_set(n_pins, n_patterns)).intervals
    value = benchmark(lambda: bcp_lower_bound(intervals))
    assert value >= 0


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_solve_bcp(benchmark, n_pins, n_patterns):
    intervals = extract_intervals(_cube_set(n_pins, n_patterns)).intervals
    solution = benchmark(lambda: solve_bcp(intervals))
    assert solution.peak == solution.lower_bound


@pytest.mark.parametrize("n_pins,n_patterns", [(100, 50), (300, 100), (600, 200)])
def test_bench_dp_fill_end_to_end(benchmark, n_pins, n_patterns):
    cubes = _cube_set(n_pins, n_patterns)
    report = benchmark(lambda: dp_fill(cubes))
    assert report.filled.is_fully_specified()


def test_bench_interleaved_ordering(benchmark):
    cubes = _cube_set(200, 120)
    result = benchmark(lambda: interleaved_ordering(cubes))
    assert result.peak is not None
