"""Benchmark + shape check for Table II (tool ordering x fill methods)."""

from __future__ import annotations

from repro.experiments import table2
from repro.experiments.fill_sweep import FILL_METHODS


def test_bench_table2(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: table2.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    assert [row["circuit"] for row in result.rows] == list(workload_names)
    for row in result.rows:
        values = {method: row[method] for method in FILL_METHODS}
        # DP-fill is optimal for the fixed ordering: it must be the row minimum.
        assert values["DP-fill"] == min(values.values()), row
        assert all(v >= 0 for v in values.values())
