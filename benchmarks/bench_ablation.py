"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a paper table; they quantify how much each design
decision of the reproduction matters:

* base-load-aware exact solver vs the paper's literal interval-only BCP,
* I-Ordering vs a plain density sort vs a random shuffle,
* X-Stat phase-1 squeeze position (left / middle / right),
* capacitance-weighted vs unweighted circuit-toggle ranking.
"""

from __future__ import annotations

import pytest

from repro.core.dpfill import dp_fill
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.experiments.workloads import build_workload
from repro.filling.xstat import XStatFill
from repro.orderings import get_ordering
from repro.power.estimator import PowerEstimator
from repro.power.switching import weighted_switching_activity


def _ablation_cubes(seed: int = 3):
    return generate_cube_set(CubeSetSpec(n_pins=120, n_patterns=80, x_fraction=0.8, seed=seed))


def test_bench_base_load_aware_vs_literal_bcp(benchmark):
    """The exact solver can only be equal or better than the literal paper BCP."""
    cubes = _ablation_cubes()
    exact = benchmark(lambda: dp_fill(cubes, account_base_toggles=True))
    literal = dp_fill(cubes, account_base_toggles=False)
    assert exact.peak_toggles <= literal.peak_toggles


def test_bench_ordering_ablation(benchmark):
    """I-Ordering vs density sort vs random shuffle, all graded by DP-fill."""
    cubes = _ablation_cubes(seed=11)

    def evaluate_all():
        peaks = {}
        for name in ("i-ordering", "density", "random", "tool"):
            ordered = get_ordering(name).order(cubes).ordered
            peaks[name] = dp_fill(ordered).peak_toggles
        return peaks

    peaks = benchmark.pedantic(evaluate_all, rounds=1, iterations=1, warmup_rounds=0)
    assert peaks["i-ordering"] <= peaks["tool"]
    assert peaks["i-ordering"] <= peaks["random"] + 2


@pytest.mark.parametrize("squeeze", ["left", "middle", "right"])
def test_bench_xstat_squeeze_sensitivity(benchmark, squeeze):
    """How sensitive the X-Stat reconstruction is to the phase-1 squeeze position."""
    cubes = _ablation_cubes(seed=17)
    outcome = benchmark(lambda: XStatFill(squeeze=squeeze).run(cubes))
    optimum = dp_fill(cubes).peak_toggles
    assert outcome.peak_toggles >= optimum


def test_bench_capacitance_weighting_ablation(benchmark):
    """Weighted vs unweighted circuit activity: the technique ranking is
    computed both ways on one workload to show the weighting does not flip the
    DP-fill advantage."""
    workload = build_workload("b08")
    estimator = PowerEstimator(workload.circuit)

    from repro.experiments.techniques import apply_technique

    def evaluate():
        tool = apply_technique("Tool", workload.cubes).filled
        proposed = apply_technique("Proposed", workload.cubes).filled
        weighted = {
            "Tool": estimator.estimate(tool).peak_power_uw,
            "Proposed": estimator.estimate(proposed).peak_power_uw,
        }
        unweighted = {
            "Tool": weighted_switching_activity(workload.circuit, tool).peak_toggles,
            "Proposed": weighted_switching_activity(workload.circuit, proposed).peak_toggles,
        }
        return weighted, unweighted

    weighted, unweighted = benchmark.pedantic(evaluate, rounds=1, iterations=1, warmup_rounds=0)
    assert weighted["Proposed"] <= weighted["Tool"] * 1.1
    assert unweighted["Proposed"] <= unweighted["Tool"] * 1.1
