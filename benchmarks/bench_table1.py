"""Benchmark + shape check for the Table I reproduction (cube X densities)."""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, workload_names):
    result = benchmark.pedantic(
        lambda: table1.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(result.rows) == len(workload_names)
    # Shape check: cubes really are dominated by don't-cares for the X-rich
    # profiles (the paper's motivation), and every density is a valid percentage.
    for row in result.rows:
        assert 0.0 <= row["X% (measured)"] <= 100.0
    synthetic_rows = [row for row in result.rows if row["cube source"] == "synthetic"]
    for row in synthetic_rows:
        assert abs(row["X% (measured)"] - row["X% (paper)"]) <= 12.0
