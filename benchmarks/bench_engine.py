"""Naive vs packed simulation-backend benchmarks.

Two entry points:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — pytest-benchmark
  timings of logic simulation, fault simulation and power estimation on the
  harness's benchmark profiles, one run per backend.
* ``PYTHONPATH=src python benchmarks/bench_engine.py`` — a standalone
  speedup report (wall-clock, a fresh simulator per run, resolved through
  the backend registry exactly like production callers; the packed
  backend's compile-once program cache is therefore in play, as designed)
  used to record the headline numbers in ``CHANGES.md``.  Results are
  asserted identical between backends before any timing is reported.

The fault-simulation run on the largest profile is the acceptance gate for
the engine subsystem: the packed backend must be at least 5x faster.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

import pytest

from repro.atpg.collapse import collapse_faults
from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.engine.backend import get_backend
from repro.experiments.workloads import Workload, build_workload, default_workload_names
from repro.power.estimator import PowerEstimator

BACKENDS = ["naive", "packed"]

#: Mirrors ``conftest.bench_names`` (kept local so ``python
#: benchmarks/bench_engine.py`` works without pytest's conftest loading).
BENCH_NAMES = ["b01", "b03", "b08", "b04", "b12"]


def bench_names() -> List[str]:
    """Benchmark names the engine comparison runs over."""
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false", "False"):
        return default_workload_names()
    return list(BENCH_NAMES)


def _filled_patterns(workload: Workload) -> TestSet:
    return dp_fill(workload.cubes).filled


# -- pytest-benchmark harness ----------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_logic_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    simulator = get_backend(backend).logic_simulator(workload.circuit)
    values = benchmark(lambda: simulator.simulate(patterns.matrix))
    assert len(values) > 0


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_fault_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    faults = collapse_faults(workload.circuit)
    simulator = get_backend(backend).fault_simulator(workload.circuit)
    result = benchmark(lambda: simulator.run(patterns, faults))
    assert result.n_patterns == len(patterns)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_power_estimation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    estimator = PowerEstimator(workload.circuit, backend=backend)
    report = benchmark(lambda: estimator.estimate(patterns))
    assert report.peak_power_uw >= 0.0


# -- standalone speedup report ---------------------------------------------
def _time_best(build: Callable[[], Callable[[], object]], repeats: int = 3) -> Tuple[float, object]:
    """Best wall-clock of ``repeats`` cold runs (a fresh callable per run)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        run = build()
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    """Print a naive-vs-packed speedup table over the benchmark profiles."""
    names: List[str] = bench_names()
    rows = []
    for name in names:
        workload = build_workload(name)
        circuit = workload.circuit
        patterns = _filled_patterns(workload)
        faults = collapse_faults(circuit)

        timings = {}
        results = {}
        for backend_name in BACKENDS:
            backend = get_backend(backend_name)
            t_logic, _ = _time_best(
                lambda: lambda: backend.logic_simulator(circuit).simulate(patterns.matrix)
            )
            t_fault, res = _time_best(
                lambda: lambda: backend.fault_simulator(circuit).run(patterns, faults),
                repeats=2,
            )
            t_power, _ = _time_best(
                lambda: lambda: PowerEstimator(circuit, backend=backend_name).estimate(patterns)
            )
            timings[backend_name] = (t_logic, t_fault, t_power)
            results[backend_name] = res
        naive_res, packed_res = results["naive"], results["packed"]
        assert list(naive_res.detected.items()) == list(packed_res.detected.items()), name
        assert naive_res.undetected == packed_res.undetected, name
        rows.append((name, circuit.n_gates, len(patterns), len(faults), timings))

    header = (
        f"{'circuit':>8} {'gates':>6} {'pats':>5} {'faults':>6} "
        f"{'logic n/p (ms)':>16} {'fault n/p (ms)':>18} {'power n/p (ms)':>16} "
        f"{'fault speedup':>13}"
    )
    print(header)
    print("-" * len(header))
    largest = max(rows, key=lambda row: row[1])
    for name, gates, n_patterns, n_faults, timings in rows:
        ln, fn, pn = (value * 1000 for value in timings["naive"])
        lp, fp, pp = (value * 1000 for value in timings["packed"])
        marker = "  <- largest" if name == largest[0] else ""
        print(
            f"{name:>8} {gates:>6} {n_patterns:>5} {n_faults:>6} "
            f"{ln:>7.1f}/{lp:<7.1f} {fn:>8.1f}/{fp:<8.1f} {pn:>7.1f}/{pp:<7.1f} "
            f"{fn / fp:>12.1f}x{marker}"
        )
    name, _, _, _, timings = largest
    speedup = timings["naive"][1] / timings["packed"][1]
    print(f"\nlargest profile ({name}) fault-simulation speedup: {speedup:.1f}x")
    if speedup < 5.0:
        print("WARNING: below the 5x acceptance threshold")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
