"""Naive vs packed vs sharded simulation-backend benchmarks.

Two entry points:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — pytest-benchmark
  timings of logic simulation, fault simulation and power estimation on the
  harness's benchmark profiles, one run per backend.
* ``PYTHONPATH=src python benchmarks/bench_engine.py`` — a standalone
  speedup report (wall-clock, a fresh simulator per run, resolved through
  the backend registry exactly like production callers; the packed
  backend's compile-once program cache and the sharded backend's persistent
  worker pool are therefore in play, as designed) used to record the
  headline numbers in ``CHANGES.md``.  Results are asserted identical
  between all backends before any timing is reported, and the full timing
  table is also written to ``BENCH_engine.json`` (per profile, per backend,
  plus speedups and the git SHA) so the perf trajectory is machine-readable
  from PR 2 onward.

Acceptance gates on the largest profile's fault-simulation run:

* packed must be at least 5x faster than naive (the engine-subsystem gate);
* sharded must be at least 2x faster than packed with 4 workers — enforced
  only when the machine actually has 4+ cores (process parallelism cannot
  beat a serial run on fewer), reported informationally otherwise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import pytest

from repro.atpg.collapse import collapse_faults
from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.engine.backend import get_backend
from repro.engine.sharded import resolve_jobs, set_default_jobs
from repro.experiments.workloads import Workload, build_workload, default_workload_names
from repro.power.estimator import PowerEstimator

BACKENDS = ["naive", "packed", "sharded"]

#: Workers the standalone sharded benchmark runs with (the acceptance gate
#: is defined at 4 workers); override with REPRO_JOBS.
BENCH_JOBS = 4

#: Mirrors ``conftest.bench_names`` (kept local so ``python
#: benchmarks/bench_engine.py`` works without pytest's conftest loading).
BENCH_NAMES = ["b01", "b03", "b08", "b04", "b12"]

#: Where the standalone mode drops its machine-readable results.
BENCH_JSON = Path("BENCH_engine.json")


def bench_names() -> List[str]:
    """Benchmark names the engine comparison runs over."""
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false", "False"):
        return default_workload_names()
    return list(BENCH_NAMES)


def _filled_patterns(workload: Workload) -> TestSet:
    return dp_fill(workload.cubes).filled


# -- pytest-benchmark harness ----------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_logic_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    simulator = get_backend(backend).logic_simulator(workload.circuit)
    values = benchmark(lambda: simulator.simulate(patterns.matrix))
    assert len(values) > 0


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_fault_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    faults = collapse_faults(workload.circuit)
    simulator = get_backend(backend).fault_simulator(workload.circuit)
    result = benchmark(lambda: simulator.run(patterns, faults))
    assert result.n_patterns == len(patterns)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_power_estimation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    estimator = PowerEstimator(workload.circuit, backend=backend)
    report = benchmark(lambda: estimator.estimate(patterns))
    assert report.peak_power_uw >= 0.0


# -- standalone speedup report ---------------------------------------------
def _time_best(build: Callable[[], Callable[[], object]], repeats: int = 3) -> Tuple[float, object]:
    """Best wall-clock of ``repeats`` cold runs (a fresh callable per run)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        run = build()
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        )
    except Exception:
        return "unknown"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _write_json(rows: List[dict], jobs: int, largest: dict) -> None:
    payload = {
        "schema": 1,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "available_cores": _available_cores(),
        "sharded_jobs": jobs,
        "backends": list(BACKENDS),
        "profiles": rows,
        "largest": largest,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_JSON.resolve()}")


def main() -> int:
    """Print the backend speedup table; write ``BENCH_engine.json``."""
    jobs = resolve_jobs(int(os.environ.get("REPRO_JOBS", "0") or 0) or BENCH_JOBS)
    previous_jobs = set_default_jobs(jobs)
    try:
        return _main(jobs)
    finally:
        set_default_jobs(previous_jobs)


def _main(jobs: int) -> int:
    names: List[str] = bench_names()
    rows: List[dict] = []
    for name in names:
        workload = build_workload(name)
        circuit = workload.circuit
        patterns = _filled_patterns(workload)
        faults = collapse_faults(circuit)

        timings: Dict[str, Dict[str, float]] = {}
        results = {}
        for backend_name in BACKENDS:
            backend = get_backend(backend_name)
            t_logic, _ = _time_best(
                lambda: lambda: backend.logic_simulator(circuit).simulate(patterns.matrix)
            )
            t_fault, res = _time_best(
                lambda: lambda: backend.fault_simulator(circuit).run(patterns, faults),
                repeats=2,
            )
            t_power, _ = _time_best(
                lambda: lambda: PowerEstimator(circuit, backend=backend_name).estimate(patterns)
            )
            timings[backend_name] = {"logic": t_logic, "fault": t_fault, "power": t_power}
            results[backend_name] = res
        reference = results["naive"]
        for backend_name in BACKENDS[1:]:
            other = results[backend_name]
            assert list(reference.detected.items()) == list(other.detected.items()), (
                name,
                backend_name,
            )
            assert reference.undetected == other.undetected, (name, backend_name)
        rows.append(
            {
                "circuit": name,
                "gates": circuit.n_gates,
                "patterns": len(patterns),
                "faults": len(faults),
                "seconds": timings,
                "fault_speedup_packed_vs_naive": timings["naive"]["fault"]
                / timings["packed"]["fault"],
                "fault_speedup_sharded_vs_packed": timings["packed"]["fault"]
                / timings["sharded"]["fault"],
            }
        )

    header = (
        f"{'circuit':>8} {'gates':>6} {'pats':>5} {'faults':>6} "
        f"{'fault n/p/s (ms)':>26} {'p/n speedup':>11} {'s/p speedup':>11}"
    )
    print(header)
    print("-" * len(header))
    largest_row = max(rows, key=lambda row: row["gates"])
    for row in rows:
        fn = row["seconds"]["naive"]["fault"] * 1000
        fp = row["seconds"]["packed"]["fault"] * 1000
        fs = row["seconds"]["sharded"]["fault"] * 1000
        marker = "  <- largest" if row["circuit"] == largest_row["circuit"] else ""
        print(
            f"{row['circuit']:>8} {row['gates']:>6} {row['patterns']:>5} {row['faults']:>6} "
            f"{fn:>8.1f}/{fp:<8.1f}/{fs:<8.1f} "
            f"{row['fault_speedup_packed_vs_naive']:>10.1f}x "
            f"{row['fault_speedup_sharded_vs_packed']:>10.1f}x{marker}"
        )

    packed_speedup = largest_row["fault_speedup_packed_vs_naive"]
    sharded_speedup = largest_row["fault_speedup_sharded_vs_packed"]
    cores = _available_cores()
    largest = {
        "circuit": largest_row["circuit"],
        "fault_speedup_packed_vs_naive": packed_speedup,
        "fault_speedup_sharded_vs_packed": sharded_speedup,
    }
    print(
        f"\nlargest profile ({largest_row['circuit']}): packed {packed_speedup:.1f}x vs naive, "
        f"sharded {sharded_speedup:.1f}x vs packed ({jobs} workers, {cores} cores available)"
    )
    _write_json(rows, jobs, largest)

    code = 0
    if packed_speedup < 5.0:
        print("WARNING: packed below the 5x acceptance threshold")
        code = 1
    if cores >= 4:
        if sharded_speedup < 2.0:
            print("WARNING: sharded below the 2x acceptance threshold")
            code = 1
    elif sharded_speedup < 2.0:
        print(
            f"note: sharded gate not enforced — {cores} core(s) available, "
            "process parallelism cannot beat a serial run here"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
