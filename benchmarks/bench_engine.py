"""Naive vs packed vs sharded simulation-backend benchmarks.

Two entry points:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — pytest-benchmark
  timings of logic simulation, fault simulation and power estimation on the
  harness's benchmark profiles, one run per backend.
* ``PYTHONPATH=src python benchmarks/bench_engine.py`` — a standalone
  speedup report (wall-clock, a fresh simulator per run, resolved through
  the backend registry exactly like production callers; the packed
  backend's compile-once program cache and the sharded backend's persistent
  worker pool are therefore in play, as designed) used to record the
  headline numbers in ``CHANGES.md``.  Results are asserted identical
  between all backends before any timing is reported, and the full timing
  table is also written to ``BENCH_engine.json`` (per profile, per backend,
  plus speedups and the git SHA) so the perf trajectory is machine-readable
  from PR 2 onward.

The standalone mode also sweeps the packed fault-grading *modes* — big-int
``lanes`` vs the vectorised uint64 ``words`` table — across pattern widths
on one profile, records the lanes→words crossover in ``BENCH_engine.json``
and prints where ``mode="auto"`` switches relative to the measured one.
A second sweep covers the fault-parallel ``faults`` kernel (64 faults per
uint64 word) three ways against lanes and words on the
many-faults/few-patterns shapes it is designed for, per profile, records
where ``auto`` switches kernels, and times PODEM end to end with the
fault-packed drop sweep on vs off (byte-identical ``ATPGResult``s asserted
first).

Acceptance gates:

* packed must be at least 5x faster than naive on the largest profile (the
  engine-subsystem gate);
* sharded must be at least 2x faster than packed with 4 workers — enforced
  only when the machine actually has 4+ cores (process parallelism cannot
  beat a serial run on fewer), reported informationally otherwise;
* the ``words`` fault mode must be at least 1.5x faster than ``lanes`` on a
  >= 4096-pattern profile (single-core SIMD throughput, so always enforced);
* the ``faults`` kernel must be at least 2x faster than the best of lanes
  and words on the largest profile's many-faults/few-patterns shape
  (single-core lane packing, so always enforced);
* telemetry (``repro.obs``) may cost at most 2% on the largest profile's
  packed fault kernel — measured with tracing *enabled* vs disabled, which
  bounds the disabled-mode overhead from above (the disabled path runs a
  strict subset of the enabled path's work: no-op attribute calls only).

The standalone mode also records a traced pass's per-kernel span breakdown
in a new ``obs`` section of ``BENCH_engine.json``, and ``--metrics PATH``
(or ``REPRO_METRICS``) additionally writes that pass as a standalone
metrics artifact (see ``repro.obs.metrics``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro import envvars
from repro.atpg.collapse import collapse_faults
from repro.atpg.podem import PodemEngine
from repro.atpg.tpg import generate_test_cubes
from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.engine.backend import get_backend
from repro.engine.fault import (
    FAULTS_MODE_MAX_PATTERNS,
    PackedFaultSimulator,
    resolve_grading_kernel,
)
from repro.engine.packed import LANE_MODE_MAX_PATTERNS
from repro.engine.sharded import JOBS_ENV_VAR, parse_jobs, set_default_jobs
from repro.experiments.workloads import Workload, build_workload, default_workload_names
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import recorder as obs
from repro.power.estimator import PowerEstimator

BACKENDS = ["naive", "packed", "sharded"]

#: Profile and pattern widths for the lanes-vs-words fault-mode sweep.  The
#: widths straddle the auto-mode crossover (LANE_MODE_MAX_PATTERNS = 4096);
#: the >= 1.5x acceptance gate applies at the widths past it.
FAULT_MODE_PROFILE = "b08"
FAULT_MODE_WIDTHS = [512, 1024, 2048, 4096, 8192]
FAULT_MODE_GATE_SPEEDUP = 1.5

#: Pattern widths for the fault-parallel kernel sweep: the
#: many-faults/few-patterns shapes the ``faults`` kernel is designed for
#: (PODEM's drop sweep grades a single filled cube), the auto-threshold
#: edge, and two widths past the crossover back to lanes.
FAULT_PARALLEL_WIDTHS = [1, 4, 8, 32]
#: ``faults`` must beat the best of lanes/words by this factor on the
#: largest profile's many-faults/few-patterns shape.
FAULT_PARALLEL_GATE_SPEEDUP = 2.0
#: Fault cap for the PODEM end-to-end A/B (the workload builder's value).
FAULT_PARALLEL_ATPG_FAULTS = 150

#: Workers the standalone sharded benchmark runs with (the acceptance gate
#: is defined at 4 workers); override with REPRO_JOBS.
BENCH_JOBS = 4

#: ATPG sweep knobs: faults per profile (stratified sample of the collapsed
#: list — the dict reference needs tens of seconds per hundred faults on the
#: largest profile, which is the point of the sweep) and the PODEM backtrack
#: limit (the workload builder's value).
ATPG_BENCH_FAULTS = 32
ATPG_BENCH_BACKTRACKS = 15
#: Compiled ternary PODEM must beat the dict reference by this factor on the
#: largest profile (the ATPG acceptance gate).
ATPG_GATE_SPEEDUP = 3.0

#: The cluster backend re-runs the sharded backend's work units through the
#: transport layer; its mp transport may cost at most this factor over the
#: sharded backend on the largest profile (a no-regression gate that holds
#: on 1-core runners too — same pool, same chunks, only the dispatch path
#: differs).
CLUSTER_GATE_SLOWDOWN = 1.5

#: Transports the standalone cluster sweep times (queue spawns two local
#: worker processes, exercising the full spool/lease path).
CLUSTER_TRANSPORTS = ["local", "mp", "queue"]

#: Tracing may cost at most this much on the largest profile's packed fault
#: kernel, enabled vs disabled (the observability acceptance gate).
OBS_GATE_OVERHEAD_PCT = 2.0
#: Best-of repeats for the overhead measurement (the margin is small, so
#: more repeats than the throughput sweeps use; off/on runs interleave so
#: machine drift hits both sides equally).
OBS_OVERHEAD_REPEATS = 9

#: Mirrors ``conftest.bench_names`` (kept local so ``python
#: benchmarks/bench_engine.py`` works without pytest's conftest loading).
BENCH_NAMES = ["b01", "b03", "b08", "b04", "b12"]

#: Where the standalone mode drops its machine-readable results.
BENCH_JSON = Path("BENCH_engine.json")


def bench_names() -> List[str]:
    """Benchmark names the engine comparison runs over."""
    if envvars.BENCH_FULL.read():
        return default_workload_names()
    return list(BENCH_NAMES)


def _filled_patterns(workload: Workload) -> TestSet:
    return dp_fill(workload.cubes).filled


# -- pytest-benchmark harness ----------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_logic_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    simulator = get_backend(backend).logic_simulator(workload.circuit)
    values = benchmark(lambda: simulator.simulate(patterns.matrix))
    assert len(values) > 0


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_fault_simulation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    faults = collapse_faults(workload.circuit)
    simulator = get_backend(backend).fault_simulator(workload.circuit)
    result = benchmark(lambda: simulator.run(patterns, faults))
    assert result.n_patterns == len(patterns)


def _wide_patterns(circuit, n_patterns: int) -> TestSet:
    """A deterministic random pattern set of the requested width."""
    rng = np.random.default_rng(7)
    return TestSet.from_matrix(
        rng.integers(0, 2, size=(n_patterns, circuit.n_test_pins)).astype(np.int8)
    )


@pytest.mark.parametrize("fault_mode", ["lanes", "words"])
@pytest.mark.parametrize("n_patterns", [1024, 4096])
def test_bench_fault_mode(benchmark, n_patterns, fault_mode):
    workload = build_workload(FAULT_MODE_PROFILE)
    patterns = _wide_patterns(workload.circuit, n_patterns)
    faults = collapse_faults(workload.circuit)
    program = get_backend("packed").compiled_program(workload.circuit)
    simulator = PackedFaultSimulator(workload.circuit, program=program, mode=fault_mode)
    result = benchmark(lambda: simulator.run(patterns, faults))
    assert result.n_patterns == n_patterns


@pytest.mark.parametrize("fault_mode", ["lanes", "words", "faults"])
def test_bench_fault_parallel_shape(benchmark, fault_mode):
    # The many-faults/few-patterns shape the fault-parallel kernel targets.
    workload = build_workload(FAULT_MODE_PROFILE)
    patterns = _wide_patterns(workload.circuit, 8)
    faults = collapse_faults(workload.circuit)
    program = get_backend("packed").compiled_program(workload.circuit)
    simulator = PackedFaultSimulator(workload.circuit, program=program, mode=fault_mode)
    result = benchmark(lambda: simulator.run(patterns, faults))
    assert result.n_patterns == 8


def _sampled_faults(circuit, cap: int = ATPG_BENCH_FAULTS):
    faults = collapse_faults(circuit)
    if len(faults) <= cap:
        return faults
    stride = len(faults) / cap
    return [faults[int(i * stride)] for i in range(cap)]


@pytest.mark.parametrize("atpg_mode", ["dict", "compiled"])
@pytest.mark.parametrize("name", ["b01", "b08"])
def test_bench_podem(benchmark, name, atpg_mode):
    # Only the small profiles: the dict reference needs tens of seconds per
    # round on the larger ones (the standalone sweep covers those once).
    workload = build_workload(name)
    faults = _sampled_faults(workload.circuit)
    engine = PodemEngine(
        workload.circuit, backtrack_limit=ATPG_BENCH_BACKTRACKS, mode=atpg_mode
    )
    results = benchmark(lambda: [engine.generate(fault) for fault in faults])
    assert len(results) == len(faults)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", bench_names())
def test_bench_power_estimation(benchmark, name, backend):
    workload = build_workload(name)
    patterns = _filled_patterns(workload)
    estimator = PowerEstimator(workload.circuit, backend=backend)
    report = benchmark(lambda: estimator.estimate(patterns))
    assert report.peak_power_uw >= 0.0


# -- standalone speedup report ---------------------------------------------
def _time_best(build: Callable[[], Callable[[], object]], repeats: int = 3) -> Tuple[float, object]:
    """Best wall-clock of ``repeats`` cold runs (a fresh callable per run)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        run = build()
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        )
    except Exception:
        return "unknown"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _write_json(
    rows: List[dict],
    jobs: int,
    largest: dict,
    fault_modes: dict,
    fault_parallel: dict,
    atpg: dict,
    cluster: dict,
    obs_section: dict,
) -> None:
    payload = {
        "schema": 6,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "available_cores": _available_cores(),
        "sharded_jobs": jobs,
        "backends": list(BACKENDS),
        "profiles": rows,
        "largest": largest,
        "fault_modes": fault_modes,
        "fault_parallel": fault_parallel,
        "atpg": atpg,
        "cluster": cluster,
        "obs": obs_section,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_JSON.resolve()}")


def _fault_mode_sweep() -> dict:
    """Time lanes vs words fault grading across pattern widths (one profile).

    Parity between the modes is asserted before any timing is reported.
    Returns the machine-readable section for ``BENCH_engine.json``: one row
    per width plus the measured lanes->words crossover (the smallest width
    where words wins) alongside the built-in auto-mode threshold.
    """
    workload = build_workload(FAULT_MODE_PROFILE)
    circuit = workload.circuit
    faults = collapse_faults(circuit)
    program = get_backend("packed").compiled_program(circuit)

    print(
        f"\nfault-grading modes on {FAULT_MODE_PROFILE} "
        f"({circuit.n_gates} gates, {len(faults)} faults):"
    )
    header = f"{'patterns':>8} {'lanes (ms)':>11} {'words (ms)':>11} {'words speedup':>13}"
    print(header)
    print("-" * len(header))
    rows: List[dict] = []
    for n_patterns in FAULT_MODE_WIDTHS:
        patterns = _wide_patterns(circuit, n_patterns)
        timings: Dict[str, float] = {}
        results = {}
        for fault_mode in ("lanes", "words"):
            t_mode, res = _time_best(
                lambda mode=fault_mode: lambda: PackedFaultSimulator(
                    circuit, program=program, mode=mode
                ).run(patterns, faults),
                repeats=2,
            )
            timings[fault_mode] = t_mode
            results[fault_mode] = res
        assert list(results["lanes"].detected.items()) == list(
            results["words"].detected.items()
        ), n_patterns
        assert results["lanes"].undetected == results["words"].undetected, n_patterns
        speedup = timings["lanes"] / timings["words"]
        rows.append(
            {
                "patterns": n_patterns,
                "seconds": {"lanes": timings["lanes"], "words": timings["words"]},
                "words_speedup": speedup,
            }
        )
        print(
            f"{n_patterns:>8} {timings['lanes'] * 1000:>11.1f} "
            f"{timings['words'] * 1000:>11.1f} {speedup:>12.2f}x"
        )

    crossover = next(
        (row["patterns"] for row in rows if row["words_speedup"] >= 1.0), None
    )
    gate_rows = [
        row for row in rows if row["patterns"] >= LANE_MODE_MAX_PATTERNS
    ]
    gate_row = max(gate_rows, key=lambda row: row["words_speedup"])
    print(
        f"measured lanes->words crossover: {crossover} patterns "
        f"(auto mode switches above {LANE_MODE_MAX_PATTERNS}); "
        f"best words speedup past the threshold: {gate_row['words_speedup']:.2f}x "
        f"at {gate_row['patterns']} patterns"
    )
    return {
        "profile": FAULT_MODE_PROFILE,
        "widths": rows,
        "crossover_patterns": crossover,
        "auto_threshold_patterns": LANE_MODE_MAX_PATTERNS,
        "gate_patterns": gate_row["patterns"],
        "words_gate_speedup": gate_row["words_speedup"],
    }


def _fault_parallel_sweep() -> dict:
    """Three-way kernel sweep on the many-faults/few-patterns shapes.

    For every benchmark profile, time ``lanes`` vs ``words`` vs ``faults``
    across :data:`FAULT_PARALLEL_WIDTHS` over the full collapsed fault list
    (parity asserted before any timing is reported), record which kernel
    ``auto`` resolves at each width, and finish with a PODEM end-to-end A/B:
    ``generate_test_cubes`` with the fault-packed drop sweep forced off
    (``drop_fault_mode="lanes"``) vs on, byte-identical ``ATPGResult``s
    asserted first.  Returns the ``fault_parallel`` section for
    ``BENCH_engine.json``.
    """
    names = bench_names()
    print("\nfault-parallel kernel (64 faults/word) vs lanes/words, per profile:")
    header = (
        f"{'circuit':>8} {'faults':>6} {'pats':>5} {'lanes (ms)':>11} "
        f"{'words (ms)':>11} {'faults (ms)':>12} {'vs best':>8} {'auto':>7}"
    )
    print(header)
    print("-" * len(header))
    rows: List[dict] = []
    for name in names:
        workload = build_workload(name)
        circuit = workload.circuit
        faults = collapse_faults(circuit)
        program = get_backend("packed").compiled_program(circuit)
        widths: List[dict] = []
        for n_patterns in FAULT_PARALLEL_WIDTHS:
            patterns = _wide_patterns(circuit, n_patterns)
            timings: Dict[str, float] = {}
            results = {}
            for kernel in ("lanes", "words", "faults"):
                t_kernel, res = _time_best(
                    lambda mode=kernel: lambda: PackedFaultSimulator(
                        circuit, program=program, mode=mode
                    ).run(patterns, faults),
                    repeats=2,
                )
                timings[kernel] = t_kernel
                results[kernel] = res
            for kernel in ("words", "faults"):
                assert list(results["lanes"].detected.items()) == list(
                    results[kernel].detected.items()
                ), (name, n_patterns, kernel)
                assert results["lanes"].undetected == results[kernel].undetected, (
                    name,
                    n_patterns,
                    kernel,
                )
            best_pattern_packed = min(timings["lanes"], timings["words"])
            speedup = best_pattern_packed / timings["faults"]
            auto_kernel = resolve_grading_kernel("auto", n_patterns, len(faults))
            widths.append(
                {
                    "patterns": n_patterns,
                    "seconds": dict(timings),
                    "faults_speedup_vs_best": speedup,
                    "auto_kernel": auto_kernel,
                }
            )
            print(
                f"{name:>8} {len(faults):>6} {n_patterns:>5} "
                f"{timings['lanes'] * 1000:>11.1f} {timings['words'] * 1000:>11.1f} "
                f"{timings['faults'] * 1000:>12.1f} {speedup:>7.2f}x {auto_kernel:>7}"
            )
        rows.append(
            {
                "circuit": name,
                "gates": circuit.n_gates,
                "faults": len(faults),
                "widths": widths,
            }
        )

    largest = max(rows, key=lambda row: row["gates"])
    gate_widths = [w for w in largest["widths"] if w["auto_kernel"] == "faults"]
    gate_row = max(gate_widths, key=lambda w: w["faults_speedup_vs_best"])
    print(
        f"largest profile ({largest['circuit']}): faults kernel "
        f"{gate_row['faults_speedup_vs_best']:.2f}x vs best of lanes/words at "
        f"{gate_row['patterns']} patterns "
        f"(gate: >= {FAULT_PARALLEL_GATE_SPEEDUP:.0f}x; auto picks faults up to "
        f"{FAULTS_MODE_MAX_PATTERNS} patterns)"
    )

    # PODEM end to end: the drop sweep's one-fault tail, collapsed vs not.
    circuit = build_workload(largest["circuit"]).circuit
    atpg_kwargs = dict(
        max_faults=FAULT_PARALLEL_ATPG_FAULTS,
        backtrack_limit=ATPG_BENCH_BACKTRACKS,
        seed=0,
        jobs=1,
    )
    t_lanes, res_lanes = _time_best(
        lambda: lambda: generate_test_cubes(
            circuit, drop_fault_mode="lanes", **atpg_kwargs
        ),
        repeats=2,
    )
    t_faults, res_faults = _time_best(
        lambda: lambda: generate_test_cubes(
            circuit, drop_fault_mode="faults", **atpg_kwargs
        ),
        repeats=2,
    )
    assert np.array_equal(res_lanes.cubes.matrix, res_faults.cubes.matrix)
    assert res_lanes.cubes.names == res_faults.cubes.names
    assert list(res_lanes.detected_faults.items()) == list(
        res_faults.detected_faults.items()
    )
    assert res_lanes.untestable_faults == res_faults.untestable_faults
    assert res_lanes.aborted_faults == res_faults.aborted_faults
    podem_speedup = t_lanes / t_faults
    print(
        f"PODEM end to end on {largest['circuit']}: per-fault drop sweep "
        f"{t_lanes * 1000:.0f}ms, fault-packed {t_faults * 1000:.0f}ms "
        f"({podem_speedup:.2f}x, byte-identical ATPGResult)"
    )
    return {
        "widths": list(FAULT_PARALLEL_WIDTHS),
        "profiles": rows,
        "auto_max_patterns": FAULTS_MODE_MAX_PATTERNS,
        "gate_circuit": largest["circuit"],
        "gate_patterns": gate_row["patterns"],
        "faults_gate_speedup": gate_row["faults_speedup_vs_best"],
        "podem_drop": {
            "circuit": largest["circuit"],
            "max_faults": FAULT_PARALLEL_ATPG_FAULTS,
            "seconds": {"lanes": t_lanes, "faults": t_faults},
            "speedup": podem_speedup,
        },
    }


def _atpg_sweep(jobs: int) -> dict:
    """Time dict vs compiled PODEM per profile; sharded generation on the largest.

    Parity — statuses, cubes, decision/backtrack counters — is asserted
    before any timing is reported, and the sharded cube-generation run must
    be byte-identical to the serial one.  Returns the machine-readable
    section for ``BENCH_engine.json``.
    """
    names = bench_names()
    print("\nPODEM test generation (dict reference vs compiled ternary engine):")
    header = (
        f"{'circuit':>8} {'gates':>6} {'faults':>6} "
        f"{'dict (ms)':>10} {'compiled (ms)':>14} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    rows: List[dict] = []
    for name in names:
        workload = build_workload(name)
        circuit = workload.circuit
        faults = _sampled_faults(circuit)
        dict_engine = PodemEngine(
            circuit, backtrack_limit=ATPG_BENCH_BACKTRACKS, mode="dict"
        )
        compiled_engine = PodemEngine(
            circuit, backtrack_limit=ATPG_BENCH_BACKTRACKS, mode="compiled"
        )
        reference = [dict_engine.generate(fault) for fault in faults]
        candidate = [compiled_engine.generate(fault) for fault in faults]
        for ref, res in zip(reference, candidate):
            assert ref.status == res.status, (name, ref.fault)
            assert ref.backtracks == res.backtracks, (name, ref.fault)
            assert ref.decisions == res.decisions, (name, ref.fault)
            if ref.detected:
                assert np.array_equal(
                    np.asarray(ref.cube.bits), np.asarray(res.cube.bits)
                ), (name, ref.fault)
        t_dict, _ = _time_best(
            lambda: lambda: [dict_engine.generate(fault) for fault in faults],
            repeats=2,
        )
        t_compiled, _ = _time_best(
            lambda: lambda: [compiled_engine.generate(fault) for fault in faults],
            repeats=2,
        )
        speedup = t_dict / t_compiled
        rows.append(
            {
                "circuit": name,
                "gates": circuit.n_gates,
                "faults": len(faults),
                "seconds": {"dict": t_dict, "compiled": t_compiled},
                "compiled_speedup": speedup,
            }
        )
        print(
            f"{name:>8} {circuit.n_gates:>6} {len(faults):>6} "
            f"{t_dict * 1000:>10.1f} {t_compiled * 1000:>14.1f} {speedup:>7.1f}x"
        )
    largest_row = max(rows, key=lambda row: row["gates"])
    print(
        f"largest profile ({largest_row['circuit']}): compiled "
        f"{largest_row['compiled_speedup']:.1f}x vs dict "
        f"(gate: >= {ATPG_GATE_SPEEDUP:.0f}x)"
    )

    # Sharded generation: the full driver (PODEM + dropping) serial vs pooled.
    circuit = build_workload(largest_row["circuit"]).circuit
    atpg_kwargs = dict(
        max_faults=96, backtrack_limit=ATPG_BENCH_BACKTRACKS, seed=0
    )
    t_serial, serial = _time_best(
        lambda: lambda: generate_test_cubes(circuit, jobs=1, **atpg_kwargs), repeats=2
    )
    t_sharded, sharded = _time_best(
        lambda: lambda: generate_test_cubes(circuit, jobs=jobs, **atpg_kwargs), repeats=2
    )
    assert np.array_equal(serial.cubes.matrix, sharded.cubes.matrix)
    assert serial.cubes.names == sharded.cubes.names
    assert list(serial.detected_faults.items()) == list(sharded.detected_faults.items())
    assert serial.untestable_faults == sharded.untestable_faults
    assert serial.aborted_faults == sharded.aborted_faults
    sharded_speedup = t_serial / t_sharded
    print(
        f"sharded generation on {largest_row['circuit']}: serial {t_serial * 1000:.0f}ms, "
        f"{jobs} workers {t_sharded * 1000:.0f}ms ({sharded_speedup:.1f}x, byte-identical)"
    )
    return {
        "backtrack_limit": ATPG_BENCH_BACKTRACKS,
        "profiles": rows,
        "largest": {
            "circuit": largest_row["circuit"],
            "compiled_speedup": largest_row["compiled_speedup"],
        },
        "sharded_generation": {
            "circuit": largest_row["circuit"],
            "jobs": jobs,
            "seconds": {"serial": t_serial, "sharded": t_sharded},
            "speedup": sharded_speedup,
        },
    }


def _cluster_sweep(jobs: int, largest_row: dict) -> dict:
    """Time the cluster backend's transports on the largest profile.

    Parity against the packed reference is asserted before any timing is
    reported.  The ``mp`` transport runs the exact sharded work units
    through the transport layer, so its time over the sharded backend's is
    a pure dispatch-overhead measurement — the no-regression gate.  The
    queue transport spools tasks to two ``repro.cluster.worker``
    subprocesses (full lease/heartbeat path, reported informationally).
    """
    from repro.cluster import ClusterFaultSimulator, QueueTransport

    name = largest_row["circuit"]
    workload = build_workload(name)
    circuit = workload.circuit
    patterns = _filled_patterns(workload)
    faults = collapse_faults(circuit)
    program = get_backend("packed").compiled_program(circuit)
    reference = PackedFaultSimulator(circuit, program=program).run(patterns, faults)
    sharded_seconds = largest_row["seconds"]["sharded"]["fault"]

    print(f"\ncluster transports on {name} ({jobs} jobs, vs sharded):")
    header = f"{'transport':>10} {'fault (ms)':>11} {'vs sharded':>10}"
    print(header)
    print("-" * len(header))
    timings: Dict[str, float] = {}
    queue_transport = None
    try:
        for transport_name in CLUSTER_TRANSPORTS:
            if transport_name == "queue":
                queue_transport = QueueTransport(workers=2, jobs=jobs)
                transport = queue_transport
            else:
                transport = transport_name
            t_cluster, result = _time_best(
                lambda t=transport: lambda: ClusterFaultSimulator(
                    circuit, transport=t, jobs=jobs, program=program
                ).run(patterns, faults),
                repeats=2,
            )
            assert list(reference.detected.items()) == list(result.detected.items()), (
                transport_name
            )
            assert reference.undetected == result.undetected, transport_name
            timings[transport_name] = t_cluster
            print(
                f"{transport_name:>10} {t_cluster * 1000:>11.1f} "
                f"{sharded_seconds / t_cluster:>9.2f}x"
            )
    finally:
        # A failed parity assert must not leak the spawned queue workers
        # (they only exit on the stop file / spool removal).
        if queue_transport is not None:
            queue_transport.close()
    mp_ratio = timings["mp"] / sharded_seconds
    print(
        f"cluster mp dispatch overhead: {mp_ratio:.2f}x sharded "
        f"(gate: <= {CLUSTER_GATE_SLOWDOWN:.1f}x)"
    )
    return {
        "circuit": name,
        "jobs": jobs,
        "seconds": timings,
        "sharded_seconds": sharded_seconds,
        "mp_vs_sharded_slowdown": mp_ratio,
    }


def _obs_sweep(
    largest_row: dict,
    metrics_path: Optional[str],
    trace_path: Optional[str] = None,
) -> dict:
    """Measure tracing overhead and record a traced per-kernel breakdown.

    The overhead number times the packed fault kernel on the largest
    profile with tracing enabled vs disabled.  The instrumentation flushes
    counters once per run — never per inner-loop iteration — so the enabled
    run bounds the disabled-mode overhead from above: with tracing off the
    same call sites hit a no-op :class:`~repro.obs.recorder.NullRecorder`,
    a strict subset of the enabled path's work.

    A dedicated traced pass (fault simulation plus a compiled-PODEM sample)
    then supplies the per-kernel span breakdown for ``BENCH_engine.json``'s
    ``obs`` section and, when a path is configured, the standalone metrics
    artifact.
    """
    name = largest_row["circuit"]
    workload = build_workload(name)
    circuit = workload.circuit
    patterns = _filled_patterns(workload)
    faults = collapse_faults(circuit)
    program = get_backend("packed").compiled_program(circuit)

    def build() -> Callable[[], object]:
        simulator = PackedFaultSimulator(circuit, program=program)
        return lambda: simulator.run(patterns, faults)

    was_enabled = obs.enabled()
    obs.disable()
    build()()  # warm every cache before either timing pass
    # Interleave off/on runs and alternate which side goes first each round:
    # machine drift over the measurement window then hits both sides equally
    # instead of biasing whichever consistently ran second.
    t_disabled = t_enabled = float("inf")
    for i in range(OBS_OVERHEAD_REPEATS):
        order = (False, True) if i % 2 == 0 else (True, False)
        for with_tracing in order:
            if with_tracing:
                obs.enable()
                t_enabled = min(t_enabled, _time_best(build, repeats=1)[0])
            else:
                obs.disable()
                t_disabled = min(t_disabled, _time_best(build, repeats=1)[0])
    obs.enable()
    overhead_pct = (t_enabled / t_disabled - 1.0) * 100.0

    # Dedicated traced pass: one fault-simulation run plus a compiled-PODEM
    # sample, so the span table covers both kernels on the same profile.
    # The timeline tier stays off for the overhead measurement above — the
    # gate certifies the default configuration — and turns on here only
    # when a trace artifact was requested.
    timeline_here = False
    if trace_path and not obs.timeline_enabled():
        obs.enable_timeline()
        timeline_here = True
    obs.reset()
    build()()
    engine = PodemEngine(
        circuit, backtrack_limit=ATPG_BENCH_BACKTRACKS, mode="compiled"
    )
    for fault in _sampled_faults(circuit):
        engine.generate(fault)
    snap = obs.snapshot()
    meta = {"tool": "bench_engine", "circuit": name, "pass": "traced-breakdown"}
    written = obs_metrics.maybe_write_metrics(metrics_path, meta=meta)
    if trace_path:
        obs_timeline.write_trace(trace_path, obs_metrics.metrics_payload(meta=meta))
    if timeline_here:
        obs.enable_timeline(False)
    if not was_enabled:
        obs.disable()

    spans = [
        {"path": path, "count": row[0], "total_s": row[1], "max_s": row[2]}
        for path, row in sorted(snap["spans"].items())
    ]
    print(
        f"\ntracing overhead on {name} (packed fault kernel): "
        f"off {t_disabled * 1000:.1f}ms, on {t_enabled * 1000:.1f}ms "
        f"({overhead_pct:+.2f}%, gate <= {OBS_GATE_OVERHEAD_PCT:.0f}%)"
    )
    header = f"{'span':<40} {'count':>6} {'total (ms)':>11} {'max (ms)':>9}"
    print(header)
    print("-" * len(header))
    for row in spans:
        print(
            f"{row['path']:<40} {row['count']:>6} "
            f"{row['total_s'] * 1000:>11.1f} {row['max_s'] * 1000:>9.1f}"
        )
    if written:
        print(f"metrics written: {written}")
    if trace_path:
        print(f"trace written: {trace_path} (load it at https://ui.perfetto.dev)")
    return {
        "circuit": name,
        "overhead": {
            "seconds": {"disabled": t_disabled, "enabled": t_enabled},
            "enabled_overhead_pct": overhead_pct,
            "gate_pct": OBS_GATE_OVERHEAD_PCT,
        },
        "counters": dict(sorted(snap["counters"].items())),
        "spans": spans,
        "metrics_path": written,
        "trace_path": trace_path,
    }


def build_parser() -> argparse.ArgumentParser:
    """Standalone-mode command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine.py",
        description="Backend speedup report; writes BENCH_engine.json.",
    )
    parser.add_argument(
        "--metrics",
        default="",
        help="also write the traced pass's telemetry as a metrics JSON "
        "artifact at PATH (default: the REPRO_METRICS environment variable)",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        metavar="TRACE_JSON",
        help="also export the traced pass as a Chrome trace-event JSON at "
        "PATH (turns on the timeline tier for that pass only; view at "
        "https://ui.perfetto.dev)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Print the backend speedup table; write ``BENCH_engine.json``."""
    args = build_parser().parse_args(argv)
    metrics_path = obs_metrics.resolve_metrics_path(args.metrics or None)
    trace_path = args.trace_out or None
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    jobs = parse_jobs(env, source=JOBS_ENV_VAR) if env else BENCH_JOBS
    previous_jobs = set_default_jobs(jobs)
    try:
        return _main(jobs, metrics_path, trace_path)
    finally:
        set_default_jobs(previous_jobs)


def _main(
    jobs: int,
    metrics_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> int:
    names: List[str] = bench_names()
    rows: List[dict] = []
    for name in names:
        workload = build_workload(name)
        circuit = workload.circuit
        patterns = _filled_patterns(workload)
        faults = collapse_faults(circuit)

        timings: Dict[str, Dict[str, float]] = {}
        results = {}
        for backend_name in BACKENDS:
            backend = get_backend(backend_name)
            t_logic, _ = _time_best(
                lambda: lambda: backend.logic_simulator(circuit).simulate(patterns.matrix)
            )
            t_fault, res = _time_best(
                lambda: lambda: backend.fault_simulator(circuit).run(patterns, faults),
                repeats=2,
            )
            t_power, _ = _time_best(
                lambda: lambda: PowerEstimator(circuit, backend=backend_name).estimate(patterns)
            )
            timings[backend_name] = {"logic": t_logic, "fault": t_fault, "power": t_power}
            results[backend_name] = res
        reference = results["naive"]
        for backend_name in BACKENDS[1:]:
            other = results[backend_name]
            assert list(reference.detected.items()) == list(other.detected.items()), (
                name,
                backend_name,
            )
            assert reference.undetected == other.undetected, (name, backend_name)
        rows.append(
            {
                "circuit": name,
                "gates": circuit.n_gates,
                "patterns": len(patterns),
                "faults": len(faults),
                "seconds": timings,
                "fault_speedup_packed_vs_naive": timings["naive"]["fault"]
                / timings["packed"]["fault"],
                "fault_speedup_sharded_vs_packed": timings["packed"]["fault"]
                / timings["sharded"]["fault"],
            }
        )

    header = (
        f"{'circuit':>8} {'gates':>6} {'pats':>5} {'faults':>6} "
        f"{'fault n/p/s (ms)':>26} {'p/n speedup':>11} {'s/p speedup':>11}"
    )
    print(header)
    print("-" * len(header))
    largest_row = max(rows, key=lambda row: row["gates"])
    for row in rows:
        fn = row["seconds"]["naive"]["fault"] * 1000
        fp = row["seconds"]["packed"]["fault"] * 1000
        fs = row["seconds"]["sharded"]["fault"] * 1000
        marker = "  <- largest" if row["circuit"] == largest_row["circuit"] else ""
        print(
            f"{row['circuit']:>8} {row['gates']:>6} {row['patterns']:>5} {row['faults']:>6} "
            f"{fn:>8.1f}/{fp:<8.1f}/{fs:<8.1f} "
            f"{row['fault_speedup_packed_vs_naive']:>10.1f}x "
            f"{row['fault_speedup_sharded_vs_packed']:>10.1f}x{marker}"
        )

    packed_speedup = largest_row["fault_speedup_packed_vs_naive"]
    sharded_speedup = largest_row["fault_speedup_sharded_vs_packed"]
    cores = _available_cores()
    largest = {
        "circuit": largest_row["circuit"],
        "fault_speedup_packed_vs_naive": packed_speedup,
        "fault_speedup_sharded_vs_packed": sharded_speedup,
    }
    print(
        f"\nlargest profile ({largest_row['circuit']}): packed {packed_speedup:.1f}x vs naive, "
        f"sharded {sharded_speedup:.1f}x vs packed ({jobs} workers, {cores} cores available)"
    )
    fault_modes = _fault_mode_sweep()
    fault_parallel = _fault_parallel_sweep()
    atpg = _atpg_sweep(jobs)
    cluster = _cluster_sweep(jobs, largest_row)
    obs_section = _obs_sweep(largest_row, metrics_path, trace_path)
    _write_json(
        rows, jobs, largest, fault_modes, fault_parallel, atpg, cluster, obs_section
    )

    code = 0
    if packed_speedup < 5.0:
        print("WARNING: packed below the 5x acceptance threshold")
        code = 1
    if cores >= 4:
        if sharded_speedup < 2.0:
            print("WARNING: sharded below the 2x acceptance threshold")
            code = 1
    elif sharded_speedup < 2.0:
        print(
            f"note: sharded gate not enforced — {cores} core(s) available, "
            "process parallelism cannot beat a serial run here"
        )
    if fault_modes["words_gate_speedup"] < FAULT_MODE_GATE_SPEEDUP:
        print(
            f"WARNING: words fault mode below the {FAULT_MODE_GATE_SPEEDUP}x "
            f"acceptance threshold on every >= {LANE_MODE_MAX_PATTERNS}-pattern "
            "profile"
        )
        code = 1
    if fault_parallel["faults_gate_speedup"] < FAULT_PARALLEL_GATE_SPEEDUP:
        print(
            f"WARNING: faults kernel below the {FAULT_PARALLEL_GATE_SPEEDUP:.0f}x "
            "acceptance threshold vs the best pattern-packed kernel on the "
            "largest profile's many-faults/few-patterns shape"
        )
        code = 1
    if atpg["largest"]["compiled_speedup"] < ATPG_GATE_SPEEDUP:
        print(
            f"WARNING: compiled PODEM below the {ATPG_GATE_SPEEDUP:.0f}x "
            "acceptance threshold vs the dict reference on the largest profile"
        )
        code = 1
    if cluster["mp_vs_sharded_slowdown"] > CLUSTER_GATE_SLOWDOWN:
        print(
            f"WARNING: cluster mp transport more than {CLUSTER_GATE_SLOWDOWN:.1f}x "
            "slower than the sharded backend on the largest profile"
        )
        code = 1
    if obs_section["overhead"]["enabled_overhead_pct"] > OBS_GATE_OVERHEAD_PCT:
        print(
            f"WARNING: tracing overhead above the {OBS_GATE_OVERHEAD_PCT:.0f}% "
            "acceptance threshold on the largest profile's packed fault kernel"
        )
        code = 1
    return code


if __name__ == "__main__":
    sys.exit(main())
