"""Benchmark + shape check for the Figure 2 reproduction (I-Ordering behaviour)."""

from __future__ import annotations

import math

from repro.experiments import figure2


def test_bench_figure2(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: figure2.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(result.panel_a) == len(workload_names)
    assert len(result.panel_b) == len(workload_names)
    assert len(result.panel_c) == 3  # tool, xstat, i-ordering

    # Fig. 2(a): within a trace, peaks improve monotonically until the stop step.
    for series in result.panel_a:
        peaks = series.peak_values
        for before, after in zip(peaks[:-2], peaks[1:-1]):
            assert after < before

    # Fig. 2(b): the iteration count stays within a generous O(log n) envelope.
    for point in result.panel_b:
        assert point.iterations <= 6 * max(math.log2(max(point.n_patterns, 2)), 1.0)

    # Fig. 2(c): the stretch analysis accounts for exactly the X bits of the set,
    # regardless of ordering (orderings only move X bits around).
    x_totals = {series.stats.total_x_bits for series in result.panel_c}
    assert len(x_totals) == 1
