"""Benchmark + shape check for the Figure 1 reproduction (greedy vs optimum fill)."""

from __future__ import annotations

from repro.experiments import figure1


def test_bench_figure1(benchmark):
    result = benchmark(figure1.run)
    # The paper's point: the greedy two-phase fill is strictly beaten by the
    # optimum on this instance, and DP-fill achieves the optimum.
    assert result.optimum_peak < result.xstat_peak
    assert result.gap >= 1
    # Both fills are complete (no X left in the rendered rows).
    assert all(set(row) <= {"0", "1"} for row in result.xstat_rows)
    assert all(set(row) <= {"0", "1"} for row in result.optimum_rows)
