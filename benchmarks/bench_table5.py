"""Benchmark + shape check for Table V (proposed vs existing techniques, peak toggles)."""

from __future__ import annotations

from repro.experiments import table5
from repro.experiments.techniques import TECHNIQUES


def test_bench_table5(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: table5.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(result.rows) == len(workload_names)
    for row in result.rows:
        for technique in TECHNIQUES:
            assert row[technique] >= 0

    # Headline shape checks mirroring the paper's conclusions:
    # 1) the proposed combination is never worse than the tool baseline,
    for row in result.rows:
        assert row["Proposed"] <= row["Tool"], row["circuit"]
    # 2) and on aggregate it beats every existing technique family.
    totals = {t: sum(row[t] for row in result.rows) for t in TECHNIQUES}
    assert totals["Proposed"] <= min(totals["Tool"], totals["ISA"], totals["Adj-fill"], totals["XStat"])


def test_bench_improvement_grows_with_size(benchmark, workload_names, workloads):
    """The paper's size trend: the % improvement over the tool baseline for the
    largest circuit in the set is at least that of the smallest circuit."""
    result = benchmark.pedantic(
        lambda: table5.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = {row["circuit"]: row for row in result.rows}
    sized = sorted(
        workloads, key=lambda w: w.circuit.n_test_pins * max(len(w.cubes), 1)
    )
    smallest, largest = rows[sized[0].name], rows[sized[-1].name]

    def improvement(row):
        value = row["%impr Tool"]
        return -1e9 if value is None else value

    assert improvement(largest) >= improvement(smallest) - 5.0
