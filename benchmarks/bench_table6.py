"""Benchmark + shape check for Table VI (peak capture power per technique)."""

from __future__ import annotations

from repro.experiments import table6
from repro.experiments.techniques import TECHNIQUES


def test_bench_table6(benchmark, workload_names, workloads):
    result = benchmark.pedantic(
        lambda: table6.run(workload_names), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(result.rows) == len(workload_names)

    power_columns = [f"{t} (uW)" for t in TECHNIQUES]
    for row in result.rows:
        for column in power_columns:
            assert row[column] >= 0.0

    # Shape checks mirroring the paper's Table VI narrative:
    # 1) aggregate peak power of the proposed technique beats the tool baseline,
    totals = {t: sum(row[f"{t} (uW)"] for row in result.rows) for t in TECHNIQUES}
    assert totals["Proposed"] <= totals["Tool"]
    # 2) and input toggles correlate positively with circuit power on most
    #    circuits (the correlation argument the paper borrows from ref. [20]).
    correlations = [row["input/circuit corr"] for row in result.rows]
    positive = sum(1 for c in correlations if c > 0.0)
    assert positive >= len(correlations) / 2
